"""The long-lived serving facade: queued jobs over warm, shared state.

:class:`SummaryService` turns the one-shot ``engine.run`` API into a
service: requests (:class:`~repro.service.request.SummaryRequest`) are
validated once, enqueued on a bounded FIFO queue, executed by a fixed
number of in-flight workers, and observed through future-like
:class:`~repro.service.jobs.SummaryJob` handles with per-iteration
progress events and cooperative cancellation.  Across requests the
service shares what one-shot calls rebuild every time:

* an interning :class:`~repro.service.store.GraphStore` — one
  ``NodeIndex`` / ``DenseAdjacency`` / CSR build per graph, plus warm
  per-graph forked shingle pools;
* in ``mode="process"``, a persistent fork-based worker pool that runs
  whole jobs, so many small requests share warm workers instead of
  paying per-call setup.

Entry points::

    with SummaryService(max_inflight=2) as service:
        job = service.submit(method="slugger", graph=graph, seed=0,
                             options={"iterations": 10})
        result = job.result()                       # sync
        result = await service.summarize(           # asyncio
            method="sweg", graph=graph, seed=1)

Determinism guarantee
---------------------
For a fixed seed a request's summary is **bit-identical** whether it
runs through ``engine.run``, a warm service, a process-mode worker, or
under concurrent mixed traffic: jobs share only read-only state (the
interned substrate, whose construction is itself deterministic in the
graph), every job draws from its own seeded RNG stream, and the executor
layer's worker contexts are isolated per thread and per process.  The
service test suite pins fingerprints across all three paths.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.base import EngineResult
from repro.engine.execution import (
    ExecutionConfig,
    ProcessShardExecutor,
    available_cpus,
    process_execution_available,
    worker_context,
)
from repro.engine.hooks import GraphResources, RunControl
from repro.engine.registry import available_methods, create
from repro.exceptions import (
    ConfigurationError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.graphs.graph import Graph
from repro.model.summary import HierarchicalSummary
from repro.obs import NULL_TRACER, MetricsRegistry, ingest_stats
from repro.service.jobs import SummaryJob
from repro.service.request import SummaryRequest
from repro.service.store import GraphHandle, GraphStore
from repro.storage.format import container_digest
from repro.storage.summary_store import (
    SummaryCache,
    SummaryMeta,
    config_fingerprint,
    encode_checkpoint_container,
    encode_summary_container,
    summary_key,
)
from repro.utils.rng import SeedLike

__all__ = ["SummaryService", "default_service", "shutdown_default_service"]

_STOP = object()


def _process_job_worker(payload: Tuple[Dict[str, Any], Optional[Graph]]) -> EngineResult:
    """Run one whole job inside a warm forked worker.

    The worker context is the service's :class:`GraphStore`, inherited
    copy-on-write at fork time.  Named graphs that were registered (and
    pre-built) before the fork resolve warm from the snapshot — the
    payload carries only the request record.  Anonymous graphs, and
    named graphs registered after the fork, arrive pickled in the
    payload and are served from a private per-job handle: an unpickled
    graph is a fresh object, so worker-side interning could never hit —
    register graphs (and :meth:`SummaryService.warm_restart` after late
    registrations) to serve them warm.  Jobs run serially inside the
    worker — process mode parallelizes *across* requests, not within
    one.

    Lock discipline: the fork can happen while a parent dispatcher
    thread holds a store or handle lock, and the child would inherit it
    held forever.  The worker therefore never acquires shared locks: the
    named-handle table is read directly (this process is
    single-threaded), and pre-fork warm-up guarantees snapshot handles
    are fully built, so their accessors stay on the lock-free fast path.
    """
    record, graph = payload
    if graph is None:
        store: GraphStore = worker_context()
        handle = store._named[record["graph_key"]]
        graph = handle.graph
    else:
        handle = GraphHandle(graph)
    request = SummaryRequest.from_dict(record, graph=graph)
    summarizer = create(request.method, **request.options)
    return summarizer.summarize(graph, seed=request.seed, resources=handle)


class _SubstrateView(GraphResources):
    """A handle view exposing the interned substrate but no warm pools.

    One-shot shims (``engine.run``, ``compare_methods``) run through the
    service for substrate interning, but must not leave per-graph forked
    pools open after they return — a script looping over many long-lived
    graphs would accumulate pools without a service lifecycle to close
    them.  Inline runs therefore see this view: shared dense/CSR, but
    any pool they need is created and closed within the run, exactly as
    before the service layer existed.  Queued service jobs get the full
    handle (warm pools included); the service's shutdown closes those.
    """

    __slots__ = ("_handle",)

    def __init__(self, handle: GraphHandle) -> None:
        self._handle = handle

    def dense(self):
        return self._handle.dense()

    def csr(self):
        return self._handle.csr()


class SummaryService:
    """A long-lived summarization service with a bounded job queue.

    Parameters
    ----------
    execution:
        Default :class:`~repro.engine.execution.ExecutionConfig` for
        requests that do not carry their own (``workers`` is a shorthand
        for ``ExecutionConfig(workers=...)``).
    mode:
        ``"thread"`` (default) runs jobs on ``max_inflight`` dispatcher
        threads in this process — full progress streams and mid-run
        cancellation.  ``"process"`` additionally ships serializable
        jobs to a persistent fork-based worker pool (warm across
        requests); progress is then job-level only and cancellation
        applies to queued jobs.  Falls back to ``"thread"`` where
        ``fork`` is unavailable.
    max_inflight:
        Number of jobs executed concurrently (dispatcher threads).
        Defaults to 1 (strict FIFO) in thread mode and to the pool width
        in process mode.
    max_pending:
        Bound of the FIFO queue; a full queue raises
        :class:`~repro.exceptions.ServiceSaturatedError` (or blocks with
        ``submit(..., block=True)``).
    graph_store:
        Optional shared :class:`~repro.service.store.GraphStore`; by
        default the service owns a private one and closes it on shutdown.
    cache_dir:
        Directory for the owned store's content-addressed substrate
        cache (see :class:`~repro.storage.cache.GraphCache`): prefetched
        registrations are persisted as packed containers there.
        Mutually exclusive with ``graph_store`` (a shared store carries
        its own cache configuration).
    summary_cache_dir:
        Directory for the content-addressed **summary** cache
        (:class:`~repro.storage.summary_store.SummaryCache`).  With a
        cache configured the service consults it before running a job —
        a previously computed ``(graph, method, seed, config)`` is
        answered from its mmap-backed container with zero summarizer
        iterations, bit-identical to the original run — persists every
        seeded result on completion, and checkpoints thread-mode jobs
        after each iteration so a killed run resumes at iteration ``k``
        with the identical fixed-seed result.  Unseeded requests bypass
        the cache (without a seed the result is not a reproducible
        content address).
    summary_cache_budget:
        Optional size budget in bytes for the summary cache
        (LRU-by-mtime eviction, see :meth:`SummaryCache.gc`).
    metrics:
        Optional shared :class:`~repro.obs.MetricsRegistry` the service
        records job-lifecycle metrics into (queue-depth gauge, queue /
        run latency histograms, outcome counters).  The service owns a
        private registry by default — service-level events are per-job,
        not per-merge, so an always-on registry costs nothing
        measurable; read it via :meth:`telemetry`.
    tracer:
        Optional :class:`~repro.obs.Tracer` receiving one span per
        executed job (lane ``job-<id>``) and, for thread-mode jobs, the
        nested engine phase/shard spans.  Defaults to the no-op tracer.
    """

    def __init__(
        self,
        *,
        execution: Optional[ExecutionConfig] = None,
        workers: Optional[int] = None,
        mode: str = "thread",
        max_inflight: Optional[int] = None,
        max_pending: int = 256,
        graph_store: Optional[GraphStore] = None,
        cache_dir=None,
        summary_cache_dir=None,
        summary_cache_budget: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ConfigurationError(f"mode must be 'thread' or 'process', got {mode!r}")
        if execution is not None and workers is not None:
            raise ConfigurationError("pass either execution or workers, not both")
        if graph_store is not None and cache_dir is not None:
            raise ConfigurationError(
                "pass either graph_store or cache_dir, not both; configure the "
                "cache on the shared store instead"
            )
        if workers is not None:
            execution = ExecutionConfig(workers=workers) if workers > 1 else None
        if max_pending < 1:
            raise ConfigurationError(f"max_pending must be >= 1, got {max_pending}")
        if mode == "process" and not process_execution_available():
            mode = "thread"
        self.mode = mode
        self.execution = execution
        pool_width = min(available_cpus(), execution.workers if execution else available_cpus())
        if max_inflight is None:
            max_inflight = max(1, pool_width) if mode == "process" else 1
        if max_inflight < 1:
            raise ConfigurationError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self.store = (
            graph_store if graph_store is not None else GraphStore(cache_dir=cache_dir)
        )
        self._owns_store = graph_store is None
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max_pending)
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False
        self._job_ids = 0
        self._job_pool: Optional[ProcessShardExecutor] = None
        self._job_pool_generation = -1
        self.summary_cache: Optional[SummaryCache] = (
            SummaryCache(summary_cache_dir, budget_bytes=summary_cache_budget)
            if summary_cache_dir is not None
            else None
        )
        self._stats = {"submitted": 0, "completed": 0, "failed": 0,
                       "cancelled": 0, "inline_runs": 0, "pool_jobs": 0,
                       "summary_cache_hits": 0, "summary_cache_stores": 0,
                       "summary_resumes": 0, "summary_cache_errors": 0}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Engine-level telemetry (phase spans, per-shard registries) is
        # opt-in: it flows only when the caller supplied a sink.  The
        # always-on private registry carries job-lifecycle metrics only.
        self._engine_telemetry = metrics is not None or tracer is not None

    # ------------------------------------------------------------------
    # Graph registration
    # ------------------------------------------------------------------
    def register_graph(
        self,
        key: str,
        graph: Graph,
        *,
        dense=None,
        csr=None,
        prefetch: bool = False,
    ) -> GraphHandle:
        """Register ``graph`` under a stable name for ``graph_key`` requests.

        ``prefetch=True`` builds the dense/CSR substrate in a background
        lane now instead of on the first request (and persists it when
        the store has a cache directory); ``dense`` / ``csr`` seed the
        handle with prebuilt views, e.g. from a
        :class:`~repro.storage.mapped.StoredGraph` mmap load.
        """
        return self.store.register(key, graph, dense=dense, csr=csr, prefetch=prefetch)

    # ------------------------------------------------------------------
    # Query serving
    # ------------------------------------------------------------------
    def query(
        self,
        graph,
        kind: str,
        *,
        source=None,
        top: Optional[int] = None,
        damping: float = 0.85,
        iterations: int = 20,
    ):
        """Serve a graph query off the store's interned substrate.

        ``graph`` is a registered graph key (``str``) or a
        :class:`~repro.graphs.graph.Graph` (interned on first use, so
        repeated queries share one frozen CSR with the summarize jobs).
        The query runs id-native on the substrate via
        :func:`repro.algorithms.query.run_query` — the label-keyed graph
        is never consulted.  Returns a
        :class:`~repro.algorithms.query.QueryResult`.
        """
        from repro.algorithms.query import run_query

        handle = self.store.get(graph) if isinstance(graph, str) else self.store.intern(graph)
        with self.tracer.span("query", kind=kind) as span:
            result = run_query(
                handle.csr(), kind, source=source, top=top,
                damping=damping, iterations=iterations,
            )
        self.metrics.counter("service_queries_total", "Queries served",
                             kind=kind).inc()
        self.metrics.histogram("service_query_seconds", "Query latency",
                               kind=kind).observe(span.duration)
        return result

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def _make_request(
        self,
        request: Optional[SummaryRequest],
        method: Optional[str],
        graph: Optional[Graph],
        graph_key: Optional[str],
        seed: SeedLike,
        execution: Optional[ExecutionConfig],
        options: Optional[Mapping[str, Any]],
        tag: Optional[str],
    ) -> SummaryRequest:
        if request is not None:
            if any(value is not None for value in
                   (method, graph, graph_key, seed, execution, options, tag)):
                raise ConfigurationError(
                    "pass either a SummaryRequest or request fields "
                    "(method/graph/graph_key/seed/execution/options/tag), "
                    "not both — field overrides on a prepared request are "
                    "not applied"
                )
            return request
        return SummaryRequest(
            method=method or "",
            graph=graph,
            graph_key=graph_key,
            seed=seed,
            options=options or {},
            execution=execution if execution is not None else self.execution,
            tag=tag,
        )

    def submit(
        self,
        request: Optional[SummaryRequest] = None,
        *,
        method: Optional[str] = None,
        graph: Optional[Graph] = None,
        graph_key: Optional[str] = None,
        seed: SeedLike = None,
        execution: Optional[ExecutionConfig] = None,
        options: Optional[Mapping[str, Any]] = None,
        tag: Optional[str] = None,
        block: bool = False,
    ) -> SummaryJob:
        """Enqueue one request; returns its :class:`SummaryJob` immediately.

        Raises :class:`~repro.exceptions.ServiceClosedError` after
        shutdown and :class:`~repro.exceptions.ServiceSaturatedError`
        when the bounded queue is full (unless ``block=True``).
        """
        request = self._make_request(
            request, method, graph, graph_key, seed, execution, options, tag
        )
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shut down; no new requests")
            self._job_ids += 1
            job = SummaryJob(self._job_ids, request)
            self._stats["submitted"] += 1
            self._ensure_dispatchers()
        job._enqueued_perf = time.perf_counter()
        try:
            self._queue.put(job, block=block)
        except queue.Full:
            with self._lock:
                self._stats["submitted"] -= 1
            raise ServiceSaturatedError(
                f"request queue is full ({self._queue.maxsize} pending); "
                "retry, submit with block=True, or raise max_pending"
            ) from None
        self.metrics.counter("service_jobs_submitted_total",
                             "Jobs accepted onto the queue").inc()
        self.metrics.gauge("service_queue_depth",
                           "Jobs currently pending").set(self._queue.qsize())
        if self._closed:
            # A concurrent shutdown may have drained the queue and
            # stopped the dispatchers between our closed-check and the
            # put; make sure this job settles instead of queueing
            # forever.  Strictly queued-only: a job a dispatcher already
            # started is left to finish.
            job._cancel_if_queued()
        return job

    def batch(self, requests: Sequence[SummaryRequest], block: bool = True) -> List[SummaryJob]:
        """Submit several requests in order; returns their jobs."""
        return [self.submit(request, block=block) for request in requests]

    def result(self, job: SummaryJob, timeout: Optional[float] = None) -> EngineResult:
        """Convenience passthrough: ``job.result(timeout)``."""
        return job.result(timeout)

    # ------------------------------------------------------------------
    # Inline execution (the engine.run shim path)
    # ------------------------------------------------------------------
    def run(
        self,
        request: SummaryRequest,
        control: Optional[RunControl] = None,
        resources: Optional[GraphResources] = None,
    ) -> EngineResult:
        """Execute ``request`` synchronously on the calling thread.

        This is the warm path behind ``engine.run``: no queue hop, and
        the graph store's interned substrate is shared with queued
        traffic — but not its warm pools (see :class:`_SubstrateView`),
        so a one-shot leaves no forked workers behind.  Bit-identical to
        a queued job with the same request.

        ``resources`` optionally overrides the store's substrate views
        with caller-supplied ones — e.g. a
        :class:`~repro.storage.mapped.StoredGraph` whose mmap-backed CSR
        the run should consume zero-copy; an inline-graph request then
        bypasses store interning entirely.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shut down; no new requests")
            self._stats["inline_runs"] += 1
        address = (
            self._summary_address(request)
            if resources is None and control is None
            else None
        )
        if address is not None:
            cached = self._cached_result(address, request)
            if cached is not None:
                with self._lock:
                    self._stats["summary_cache_hits"] += 1
                return cached
        result = self._run_request(request, control, warm_pools=False, resources=resources)
        if address is not None:
            self._persist_result(address, request, result)
        return result

    # ------------------------------------------------------------------
    # Async entry point
    # ------------------------------------------------------------------
    async def summarize(
        self,
        method: Optional[str] = None,
        graph: Optional[Graph] = None,
        *,
        request: Optional[SummaryRequest] = None,
        graph_key: Optional[str] = None,
        seed: SeedLike = None,
        execution: Optional[ExecutionConfig] = None,
        options: Optional[Mapping[str, Any]] = None,
        tag: Optional[str] = None,
    ) -> EngineResult:
        """``await``-able submit-and-wait: returns the EngineResult.

        Cancelling the awaiting task cancels the underlying job (which
        settles at its next between-iteration checkpoint).
        """
        job = self.submit(
            request=request, method=method, graph=graph, graph_key=graph_key,
            seed=seed, execution=execution, options=options, tag=tag, block=False,
        )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[EngineResult]" = loop.create_future()

        def _settle(settled: SummaryJob) -> None:
            try:
                outcome = settled.result(timeout=0)
            except BaseException as error:  # noqa: BLE001 - forwarded to awaiter
                loop.call_soon_threadsafe(_set_exception, error)
            else:
                loop.call_soon_threadsafe(_set_result, outcome)

        def _set_result(outcome: EngineResult) -> None:
            if not future.done():
                future.set_result(outcome)

        def _set_exception(error: BaseException) -> None:
            if not future.done():
                future.set_exception(error)

        job.add_done_callback(_settle)
        try:
            return await future
        except asyncio.CancelledError:
            job.cancel()
            raise

    # ------------------------------------------------------------------
    # Execution machinery
    # ------------------------------------------------------------------
    def _ensure_dispatchers(self) -> None:
        """Start the dispatcher threads lazily (holding the lock)."""
        while len(self._threads) < self.max_inflight:
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"summary-service-{id(self):x}-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                try:
                    self._execute_job(item)
                except Exception:
                    # _execute_job settles the job before anything that
                    # can raise here (stray listener/bookkeeping errors);
                    # a dispatcher lane must never die and strand the
                    # queue behind it.
                    pass
            finally:
                self._queue.task_done()

    def _execute_job(self, job: SummaryJob) -> None:
        started_perf = time.perf_counter()
        queued_perf = getattr(job, "_enqueued_perf", None)
        if queued_perf is not None:
            self.metrics.histogram(
                "service_queue_seconds", "Queued-to-running latency"
            ).observe(started_perf - queued_perf)
        self.metrics.gauge("service_queue_depth",
                           "Jobs currently pending").set(self._queue.qsize())
        method = job.request.method or "custom"
        if not job._try_start():
            with self._lock:
                self._stats["cancelled"] += 1
            self._job_settled(job, method, started_perf, "cancelled")
            return
        address = self._summary_address(job.request)
        if address is not None:
            cached = self._cached_result(address, job.request)
            if cached is not None:
                job._record("cache", summary_cache="hit", summary_key=address["key"])
                job._finish(cached)
                with self._lock:
                    self._stats["completed"] += 1
                    self._stats["summary_cache_hits"] += 1
                self._job_settled(job, method, started_perf, "cache_hit")
                return
        span = self.tracer.span("job", lane=f"job-{job.id}", method=method,
                                job_id=job.id)
        outcome = "completed"
        try:
            with span:
                if self.mode == "process" and job.request.serializable:
                    # The job body runs in a forked worker, so mid-run
                    # checkpoint hooks cannot reach this process; caching is
                    # parent-side only (consult above, persist below).
                    result = self._run_in_pool(job.request)
                else:
                    resume = (
                        self._resume_payload(address) if address is not None else None
                    )
                    control = RunControl(
                        on_progress=job._on_run_progress,
                        cancel=job.cancel_event,
                        checkpoint_sink=(
                            self._checkpoint_sink(address, job.request, job)
                            if address is not None else None
                        ),
                        resume_payload=resume,
                        metrics=self.metrics if self._engine_telemetry else None,
                        tracer=self.tracer if self._engine_telemetry else None,
                    )
                    if resume is not None:
                        job._record("resume", iteration=resume["iteration"])
                        with self._lock:
                            self._stats["summary_resumes"] += 1
                    result = self._run_request(job.request, control)
        except BaseException as error:  # noqa: BLE001 - settled on the job
            job._fail(error)
            with self._lock:
                outcome = "cancelled" if job.cancelled() else "failed"
                self._stats[outcome] += 1
        else:
            if address is not None:
                self._persist_result(address, job.request, result)
            job._finish(result)
            with self._lock:
                self._stats["completed"] += 1
        span.annotate(outcome=outcome)
        self._job_settled(job, method, started_perf, outcome)

    def _job_settled(self, job: SummaryJob, method: str, started_perf: float,
                     outcome: str) -> None:
        """Record one settled job's lifecycle metrics."""
        self.metrics.counter("service_jobs_total", "Settled jobs by outcome",
                             outcome=outcome, method=method).inc()
        self.metrics.histogram("service_job_seconds",
                               "Running-to-settled duration",
                               method=method).observe(
            time.perf_counter() - started_perf)

    # ------------------------------------------------------------------
    # Summary cache (warm-start + resumable checkpoints)
    # ------------------------------------------------------------------
    def _graph_digest(self, handle: GraphHandle) -> str:
        """The handle's graph content address (memoized on the handle)."""
        if handle.content_digest is None:
            handle.content_digest = container_digest(handle.csr())
        return handle.content_digest

    def _summary_address(self, request: SummaryRequest) -> Optional[Dict[str, Any]]:
        """Resolve a request to its summary-cache address, or ``None``.

        Uncacheable requests — no cache configured, no seed (the result
        is not reproducible), or an opaque pre-configured summarizer —
        return ``None`` and follow the historical path untouched.  The
        execution config is deliberately *not* part of the address:
        results are bit-identical at any worker count.
        """
        if self.summary_cache is None or request.seed is None:
            return None
        if request.summarizer is not None:
            return None
        graph, handle = self._resolve(request)
        graph_digest = self._graph_digest(handle)
        config_digest, config_json = config_fingerprint(
            request.method, dict(request.options)
        )
        return {
            "key": summary_key(graph_digest, request.method, request.seed, config_digest),
            "graph_digest": graph_digest,
            "config_digest": config_digest,
            "config_json": config_json,
            "handle": handle,
        }

    def _cached_result(self, address: Dict[str, Any],
                       request: SummaryRequest) -> Optional[EngineResult]:
        """The warm-start path: rebuild an EngineResult off the cache."""
        assert self.summary_cache is not None
        started = time.perf_counter()
        stored = self.summary_cache.load_summary(address["key"])
        if stored is None:
            return None
        try:
            summary = stored.summary
            history = stored.meta.extra.get("history", [])
        finally:
            stored.close()
        return EngineResult(
            method=request.method,
            summary=summary,
            runtime_seconds=time.perf_counter() - started,
            history=list(history),
            details={
                "summary_cache": "hit",
                "summary_key": address["key"],
                "container": stored.path,
            },
        )

    def _meta_for(self, address: Dict[str, Any], method: str, seed,
                  kind: str, extra: Optional[Dict[str, Any]] = None) -> SummaryMeta:
        return SummaryMeta(
            kind=kind,
            method=method,
            seed=seed,
            graph_digest=address["graph_digest"],
            config_digest=address["config_digest"],
            config_json=address["config_json"],
            extra=extra or {},
        )

    def _resume_payload(self, address: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """A checkpointed snapshot for this address, or ``None``.

        Leaves are rebuilt against the live graph's node order; the
        checkpoint's graph digest must match the address, so a stale or
        foreign checkpoint can never leak into a run.
        """
        assert self.summary_cache is not None
        handle: GraphHandle = address["handle"]
        checkpoint = self.summary_cache.load_checkpoint(
            address["key"],
            list(handle.graph.nodes()),
            graph_digest=address["graph_digest"],
        )
        if checkpoint is None:
            return None
        return {
            "iteration": checkpoint.iteration,
            "summary": checkpoint.summary,
            "rng_state": checkpoint.rng_state,
            "history": checkpoint.history,
        }

    def _checkpoint_sink(self, address: Dict[str, Any],
                         request: SummaryRequest, job: Optional[SummaryJob]):
        """A RunControl checkpoint sink persisting iteration snapshots."""

        def sink(payload: Dict[str, Any]) -> None:
            summary = payload.get("summary")
            if not isinstance(summary, HierarchicalSummary):
                return
            try:
                meta = self._meta_for(
                    address, request.method, request.seed, kind="hierarchical"
                )
                image = encode_checkpoint_container(
                    summary, meta, int(payload["iteration"]),
                    payload["rng_state"], payload["history"],
                )
                assert self.summary_cache is not None
                self.summary_cache.store_checkpoint(address["key"], image)
            except Exception:  # noqa: BLE001 - checkpointing must not fail a run
                with self._lock:
                    self._stats["summary_cache_errors"] += 1
                return
            if job is not None:
                job._record("checkpoint", iteration=int(payload["iteration"]))

        return sink

    def _persist_result(self, address: Dict[str, Any], request: SummaryRequest,
                        result: EngineResult) -> None:
        """Persist a finished result under its content address.

        Persistence failures (unserializable history, disk errors) are
        counted but never surfaced — the job already has its result.
        """
        assert self.summary_cache is not None
        handle: GraphHandle = address["handle"]
        try:
            meta = self._meta_for(
                address,
                result.method,
                request.seed,
                kind=(
                    "hierarchical"
                    if isinstance(result.summary, HierarchicalSummary)
                    else "flat"
                ),
                extra={"history": result.history},
            )
            image = encode_summary_container(handle.csr(), result.summary, meta)
            self.summary_cache.store_summary(address["key"], image)
            with self._lock:
                self._stats["summary_cache_stores"] += 1
        except Exception:  # noqa: BLE001 - persistence must not fail the job
            with self._lock:
                self._stats["summary_cache_errors"] += 1

    def _resolve(self, request: SummaryRequest) -> Tuple[Graph, GraphHandle]:
        if request.graph_key is not None:
            handle = self.store.get(request.graph_key)
            return handle.graph, handle
        assert request.graph is not None
        return request.graph, self.store.intern(request.graph)

    def _run_request(
        self,
        request: SummaryRequest,
        control: Optional[RunControl],
        warm_pools: bool = True,
        resources: Optional[GraphResources] = None,
    ) -> EngineResult:
        if resources is not None and request.graph is not None:
            # Caller-supplied substrate over an inline graph: nothing to
            # intern — the run consumes the provided views directly.
            graph = request.graph
        else:
            graph, handle = self._resolve(request)
            if resources is None:
                resources = handle if warm_pools else _SubstrateView(handle)
        summarizer = (
            request.summarizer
            if request.summarizer is not None
            else create(request.method, **request.options)
        )
        return summarizer.summarize(
            graph,
            seed=request.seed,
            execution=request.execution,
            control=control,
            resources=resources,
        )

    def _run_in_pool(self, request: SummaryRequest) -> EngineResult:
        graph, handle = self._resolve(request)
        pool = self._ensure_job_pool()
        # Named graphs whose *key* was registered before the pool forked
        # live in the workers' copy-on-write snapshot and travel by key
        # alone; anonymous graphs (workers cannot resolve them) and keys
        # registered after the fork — even for an already-interned graph
        # — ship with the payload.
        warm_in_snapshot = (
            request.graph_key is not None
            and self.store.key_generation(request.graph_key)
            <= self._job_pool_generation
        )
        inline = None if warm_in_snapshot else graph
        record = request.to_dict()
        with self._lock:
            self._stats["pool_jobs"] += 1
        # prestart is an idempotent width guard: after a restart (or a
        # transient submit failure tore the pool down) the lazy re-fork
        # would otherwise be sized by this 1-item payload.
        pool.prestart()
        return next(iter(pool.map_shards(_process_job_worker, [(record, inline)])))

    def _prewarm_named_handles(self) -> None:
        """Fully build every named handle before the pool (re)forks.

        Builds dense *and* CSR so forked workers inherit finished
        substrates copy-on-write and their accessors never touch a lock
        (see the worker's lock-discipline note).  Only named handles
        matter: anonymous graphs always ship with their payloads.
        """
        for handle in self.store.named_handles():
            handle.csr()  # builds dense() first

    def _ensure_job_pool(self) -> ProcessShardExecutor:
        with self._lock:
            if self._job_pool is None:
                # Load the adapter registry in the parent before any
                # fork: workers then hit create()'s lock-free fast path
                # instead of importing under a lock another parent
                # thread might hold at fork time.
                available_methods()
                self._prewarm_named_handles()
                self._job_pool = ProcessShardExecutor(
                    self.max_inflight, context=self.store
                )
                # repro-lint: disable=fork-under-lock (forked job workers never acquire the service lock; holding it here serializes racing first submissions)
                self._job_pool.prestart()
                self._job_pool_generation = self.store.generation
            return self._job_pool

    def warm_restart(self) -> None:
        """Re-fork the process-mode job pool against the current store.

        Call after registering large graphs so subsequent jobs resolve
        them from the copy-on-write snapshot instead of shipping them
        per payload.  No-op in thread mode or before the pool exists.
        """
        with self._lock:
            pool = self._job_pool
            if pool is not None:
                self._prewarm_named_handles()
                pool.restart()
                self._job_pool_generation = self.store.generation

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service counters plus the graph store's interning stats."""
        with self._lock:
            record = dict(self._stats)
        record["mode"] = self.mode
        record["max_inflight"] = self.max_inflight
        record["pending"] = self._queue.qsize()
        record["store"] = self.store.stats()
        if self.summary_cache is not None:
            record["summary_cache"] = self.summary_cache.stats()
        return record

    def telemetry(self) -> Dict[str, Any]:
        """One federated metrics snapshot across every layer.

        Merges the live lifecycle registry (queue depth, latency
        histograms, outcome counters — plus engine metrics when the
        service was built with telemetry sinks) with the three legacy
        ``stats()`` dicts — the service's own counters
        (``repro_service_*``), the graph store's interning stats
        (``repro_graph_store_*``), and the summary cache's
        (``repro_summary_cache_*``) — and the substrate
        :class:`~repro.storage.cache.GraphCache` counters
        (``repro_graph_cache_*``) when the store has one.  The result is
        a plain :meth:`~repro.obs.MetricsRegistry.snapshot` dict, ready
        for :func:`repro.obs.render_prometheus` /
        :func:`repro.obs.render_json` — the payload a ``/metrics``
        endpoint serves.
        """
        registry = MetricsRegistry()
        registry.merge(self.metrics.snapshot())
        stats = self.stats()
        store_stats = stats.pop("store", {})
        summary_stats = stats.pop("summary_cache", None)
        ingest_stats(registry, stats, "repro_service")
        ingest_stats(registry, store_stats, "repro_graph_store")
        cache = self.store.cache
        if cache is not None:
            ingest_stats(registry, cache.stats(), "repro_graph_cache")
        if summary_stats is not None:
            ingest_stats(registry, summary_stats, "repro_summary_cache")
        return registry.snapshot()

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting requests, drain, and tear everything down.

        ``cancel_pending=True`` cancels still-queued jobs instead of
        running them.  Idempotent; also invoked by ``__exit__``.
        """
        with self._lock:
            if self._closed:
                threads: List[threading.Thread] = []
            else:
                self._closed = True
                threads = list(self._threads)
        if cancel_pending:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                try:
                    if item is _STOP:
                        # Another shutdown's dispatcher sentinel: not
                        # ours to consume.  Sentinels sit behind every
                        # job (FIFO), so the drain is complete.
                        self._queue.put(_STOP)
                        break
                    if item._cancel_if_queued():
                        with self._lock:
                            self._stats["cancelled"] += 1
                finally:
                    self._queue.task_done()
        for _ in threads:
            self._queue.put(_STOP)
        if wait:
            for thread in threads:
                thread.join()
        with self._lock:
            pool, self._job_pool = self._job_pool, None
        if pool is not None:
            pool.close()
        if self._owns_store:
            self.store.close()

    close = shutdown

    def __enter__(self) -> "SummaryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"SummaryService(mode={self.mode!r}, "
                f"max_inflight={self.max_inflight}, "
                f"pending={self._queue.qsize()})")


# ----------------------------------------------------------------------
# The default service behind the one-shot shims
# ----------------------------------------------------------------------
_DEFAULT: Optional[SummaryService] = None
_DEFAULT_LOCK = threading.Lock()


def default_service() -> SummaryService:
    """The process-wide service behind ``engine.run`` and friends.

    Thread-mode, strict-FIFO, with a weakly-interning graph store — the
    shims gain substrate reuse across repeated calls on the same graph
    without changing any one-shot semantics.  Created lazily; reset with
    :func:`shutdown_default_service`.
    """
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT._closed:
        with _DEFAULT_LOCK:
            if _DEFAULT is None or _DEFAULT._closed:
                _DEFAULT = SummaryService(mode="thread", max_inflight=1)
    return _DEFAULT


def shutdown_default_service() -> None:
    """Tear down the default service (a fresh one is created on demand)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        service, _DEFAULT = _DEFAULT, None
    if service is not None:
        service.shutdown(cancel_pending=True)
