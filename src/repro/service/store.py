"""Graph interning: one substrate build per graph, shared across requests.

Every summarizer run needs the dense integer-id substrate
(:class:`~repro.graphs.index.NodeIndex` + adjacency) and, for parallel
shingle sweeps, a frozen CSR view and a forked worker pool.  A one-shot
``engine.run`` call rebuilds all of that per invocation; a serving
workload issuing many small requests against the same graphs should not.
:class:`GraphStore` interns graphs by object identity and hands out
:class:`GraphHandle` objects that memoize the substrate views lazily and
keep per-graph warm shingle pools open across requests.

Everything a handle shares is **read-only for summarizer runs** (the
input adjacency never changes during a run), so one handle can serve any
number of concurrent jobs; builds are serialized per handle with a lock
so two racing jobs cannot duplicate work.

Staleness: handles remember the graph's :attr:`~repro.graphs.graph.Graph.
mutation_count` at build time.  If a caller mutates a graph between
requests (the ``Graph`` type is mutable), the next ``intern`` / ``get``
detects the drift — including count-preserving edit sequences — and
rebuilds the handle.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Dict, Iterator, List, Optional

from repro.engine.execution import ExecutionConfig, ProcessShardExecutor
from repro.engine.hooks import GraphResources
from repro.exceptions import ServiceError
from repro.graphs.dense import CSRAdjacency, DenseAdjacency, LazyDenseAdjacency
from repro.graphs.graph import Graph
from repro.graphs.staleness import ensure_fresh_views, mutation_stamp, stamp_is_stale

__all__ = ["GraphHandle", "GraphStore"]


class GraphHandle(GraphResources):
    """Memoized substrate views (and warm pools) for one interned graph.

    Implements the :class:`~repro.engine.hooks.GraphResources` protocol,
    so a handle can be passed straight into ``Summarizer.summarize`` as
    the run's ``resources``.
    """

    def __init__(
        self,
        graph: Graph,
        key: Optional[str] = None,
        generation: int = 0,
        dense: Optional[DenseAdjacency] = None,
        csr: Optional[CSRAdjacency] = None,
    ) -> None:
        # Weak, not strong: the handle lives as a value of the store's
        # weak-keyed table, so a strong graph reference here would keep
        # the key reachable through the value and no anonymous graph
        # could ever be evicted.  Named registrations pin the graph
        # separately (see :meth:`GraphStore.register`).
        self._graph = weakref.ref(graph)
        self.key = key
        #: Store generation at creation; the process-mode service uses it
        #: to decide whether a forked worker snapshot already holds this
        #: handle's graph.
        self.generation = generation
        self._stamp_at_build = mutation_stamp(graph)
        self._lock = threading.Lock()
        # Prebuilt substrate views (a storage-layer mmap load, a prior
        # handle) seed the memos; substrate construction is deterministic
        # in graph content, so a seeded handle serves the same bytes a
        # self-building one would.
        ensure_fresh_views(graph.num_edges, error=ServiceError, dense=dense, csr=csr)
        self._dense = dense
        self._csr = csr
        #: Whether the frozen CSR was injected rather than built here —
        #: a seeded view came off a container/mmap, so the store's
        #: persistence lane must not re-encode and re-pack it.
        self.seeded_csr = csr is not None
        #: Content digest memoized by the persistence lane after the
        #: first pack, so re-registrations skip the O(m) re-encode.
        self.content_digest: Optional[str] = None
        self._pools: Dict[int, ProcessShardExecutor] = {}
        self._builds = 0

    @property
    def graph(self) -> Graph:
        """The interned graph; raises if it was garbage-collected."""
        graph = self._graph()
        if graph is None:
            raise ServiceError(
                "the interned graph was garbage-collected; keep a reference "
                "to the graph (or register it under a name) while using its handle"
            )
        return graph

    # -- GraphResources protocol ---------------------------------------
    def dense(self) -> DenseAdjacency:
        """The interned dense substrate, built on first use.

        A handle seeded with a frozen CSR only (a storage-layer mmap
        load) hands out a thaw-on-demand
        :class:`~repro.graphs.dense.LazyDenseAdjacency` overlay over that
        view instead of re-deriving an eager thaw from the label-keyed
        graph — the contents are identical either way, and jobs that only
        read a fraction of the neighborhoods never pay the O(m) thaw.
        Concurrent jobs may race to thaw the same node; the overlay's
        per-node slot assignment is atomic under the GIL and every racer
        builds the identical set, so the race is benign for the
        read-only-during-runs contract this handle already requires.
        """
        if self._dense is None:
            with self._lock:
                if self._dense is None:
                    self._builds += 1
                    self._dense = (
                        LazyDenseAdjacency(self._csr)
                        if self._csr is not None
                        else DenseAdjacency.from_graph(self.graph)
                    )
        return self._dense

    def csr(self) -> CSRAdjacency:
        """The interned frozen CSR view, built on first use."""
        if self._csr is None:
            dense = self.dense()
            with self._lock:
                if self._csr is None:
                    self._csr = dense.freeze()
        return self._csr

    def shingle_executor(self, execution: Optional[ExecutionConfig]):
        """A warm per-graph shingle pool for ``execution``, or ``None``.

        Mirrors the gating of the shingle phases (parallel configuration,
        graph clears the size floor); pools are keyed by worker count and
        stay open across requests — their forked workers inherited this
        handle's immutable ``(csr, labels)`` context, so every later
        request against the same graph skips both the substrate build and
        the fork.  Closed by :meth:`close` when the store drops the
        handle.
        """
        if (
            execution is None
            or not execution.parallel
            or self.graph.num_nodes < execution.shingle_parallel_min_nodes
        ):
            return None
        pool = self._pools.get(execution.workers)
        if pool is None:
            # Build the context before taking the lock: csr()/dense()
            # acquire the same non-reentrant lock internally.
            context = (self.csr(), self.dense().index.labels())
            with self._lock:
                pool = self._pools.get(execution.workers)
                if pool is None:
                    pool = ProcessShardExecutor(execution.workers, context=context)
                    self._pools[execution.workers] = pool
        return pool

    # -- lifecycle ------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether the graph was structurally mutated since the handle was built.

        Tracks :attr:`Graph.mutation_count` (via
        :mod:`repro.graphs.staleness`), so even count-preserving edit
        sequences (remove one edge, add another) are detected.
        """
        return stamp_is_stale(self.graph, self._stamp_at_build)

    @property
    def builds(self) -> int:
        """Number of substrate builds this handle performed (0 or 1)."""
        return self._builds

    def close(self) -> None:
        """Shut down the handle's warm pools (idempotent)."""
        with self._lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.close()

    def __repr__(self) -> str:
        return (f"GraphHandle(key={self.key!r}, nodes={self.graph.num_nodes}, "
                f"edges={self.graph.num_edges})")


def _close_if_alive(handle_ref: "weakref.ref[GraphHandle]") -> None:
    """Graph finalizer: close the handle's pools iff it is still alive."""
    handle = handle_ref()
    if handle is not None:
        handle.close()


class GraphStore:
    """Interning table: graph → :class:`GraphHandle`.

    Graphs are interned by *object identity* (``Graph`` hashes by
    identity), through a weak mapping — the store never keeps an
    anonymous graph alive on its own.  Named graphs registered via
    :meth:`register` are additionally pinned strongly under their key, so
    a serving batch file can reference them by name.

    ``hits`` / ``misses`` count :meth:`intern` lookups and are the
    serving layer's cache-effectiveness signal.

    Persistence and prefetch
    ------------------------
    With a ``cache_dir``, the store persists every *prefetched* named
    registration as a packed binary container
    (:class:`~repro.storage.cache.GraphCache`, content-addressed), so
    other processes — and restarts — can memory-map the substrate
    instead of rebuilding it.  ``register(..., prefetch=True)`` builds
    the handle's dense/CSR views in a background lane at registration
    time instead of on the first request; ``prefetched`` / ``packed``
    counters surface in :meth:`stats`.
    """

    def __init__(self, cache_dir=None) -> None:
        self._lock = threading.Lock()
        self._handles: "weakref.WeakKeyDictionary[Graph, GraphHandle]" = (
            weakref.WeakKeyDictionary()
        )
        self._named: Dict[str, GraphHandle] = {}
        #: Strong references for named graphs (handles only hold weakrefs).
        self._pinned: Dict[str, Graph] = {}
        #: Store generation at which each *key* was (last) registered —
        #: distinct from the handle's creation generation: re-registering
        #: an already-interned graph under a new key must still look
        #: "young" to pools forked before that key existed.
        self._key_generation: Dict[str, int] = {}
        #: Bumped whenever a new handle is created; process-mode services
        #: compare it against their forked snapshot's generation.
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.prefetched = 0
        self.packed = 0
        self.prefetch_errors = 0
        self._prefetch_threads: List[threading.Thread] = []
        self._cache = None
        if cache_dir is not None:
            from repro.storage.cache import GraphCache

            self._cache = GraphCache(cache_dir)

    @property
    def cache(self):
        """The backing :class:`~repro.storage.cache.GraphCache`, if any."""
        return self._cache

    def intern(
        self,
        graph: Graph,
        key: Optional[str] = None,
        dense: Optional[DenseAdjacency] = None,
        csr: Optional[CSRAdjacency] = None,
    ) -> GraphHandle:
        """The (possibly new) handle for ``graph``; counts hit/miss.

        ``dense`` / ``csr`` optionally seed a *new* handle with prebuilt
        substrate views (e.g. a storage-layer mmap load), skipping the
        first-request build; an existing fresh handle wins over seeds.
        """
        with self._lock:
            handle = self._handles.get(graph)
            if handle is not None and not handle.stale:
                self.hits += 1
                return handle
            if handle is not None:
                handle.close()
            self.misses += 1
            self.generation += 1
            handle = GraphHandle(
                graph, key=key, generation=self.generation, dense=dense, csr=csr
            )
            self._handles[graph] = handle
            # If the graph is collected, the weak table drops the handle;
            # the finalizer makes sure its warm pools go with it.  It
            # must hold the handle weakly — a strong reference would pin
            # every superseded (stale-replaced) handle, and its whole
            # substrate, for the graph's lifetime.
            weakref.finalize(graph, _close_if_alive, weakref.ref(handle))
            return handle

    def register(
        self,
        key: str,
        graph: Graph,
        dense: Optional[DenseAdjacency] = None,
        csr: Optional[CSRAdjacency] = None,
        prefetch: bool = False,
    ) -> GraphHandle:
        """Intern ``graph`` under a stable name (strongly referenced).

        ``prefetch=True`` builds the handle's dense/CSR substrate in a
        background lane immediately — the first request then finds warm
        views instead of paying the build — and, when the store has a
        ``cache_dir``, persists the packed container there.  The lane
        never fails a registration: build/pack errors are counted
        (``prefetch_errors``) and the first request falls back to the
        ordinary on-demand build.
        """
        handle = self.intern(graph, key=key, dense=dense, csr=csr)
        with self._lock:
            if self._named.get(key) is not handle:
                # New or rebound key: pools forked earlier cannot resolve
                # it, so the binding must look younger than they are.
                self.generation += 1
                self._key_generation[key] = self.generation
            self._named[key] = handle
            self._pinned[key] = graph
        if prefetch:
            thread = threading.Thread(
                target=self._prefetch,
                args=(handle,),
                name=f"graph-store-prefetch-{key}",
                daemon=True,
            )
            with self._lock:
                # Prune only *finished* threads (an unstarted thread is
                # not alive either, and join() on one raises), and start
                # inside the lock so a concurrent drain can never see —
                # or prune — a thread that was appended but not started.
                self._prefetch_threads = [
                    t for t in self._prefetch_threads if t.is_alive()
                ]
                self._prefetch_threads.append(thread)
                thread.start()
        return handle

    def _prefetch(self, handle: GraphHandle) -> None:
        """Background lane: build (and optionally persist) one substrate."""
        try:
            # Warm both views: csr() alone would skip the dense thaw on
            # handles seeded with a mapped CSR.
            handle.dense()
            csr = handle.csr()
            cache = self._cache
            created = False
            # Seeded CSRs came off an existing container — re-encoding
            # them (O(m)) to discover a digest we would not write is
            # pure waste, and for cache-fed inputs it would duplicate
            # the container under a second digest.  The digest memo
            # makes a re-registration of the same handle a true
            # metadata no-op (no re-encode, just a stat).
            if cache is not None and not handle.seeded_csr:
                digest, _, created = cache.store_csr(
                    csr, digest=handle.content_digest
                )
                handle.content_digest = digest
            with self._lock:
                self.prefetched += 1
                if created:
                    self.packed += 1
        except Exception:
            # The lane must never propagate: a failed prefetch simply
            # means the first request pays the build it would have paid
            # anyway (or surfaces the real error in request context).
            with self._lock:
                self.prefetch_errors += 1

    def drain_prefetch(self, timeout: Optional[float] = None) -> None:
        """Wait for all in-flight prefetch lanes (tests, orderly shutdown).

        ``timeout`` bounds the *total* wait, not each join — a store with
        many slow lanes still drains within the advertised cap (threads
        still alive past the deadline are daemons and are abandoned).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            threads = list(self._prefetch_threads)
        for thread in threads:
            thread.join(
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )

    def key_generation(self, key: str) -> int:
        """Store generation at which ``key`` was last registered.

        Process-mode services compare this against their forked
        snapshot's generation to decide whether a worker can resolve the
        key from inherited memory.  Unknown keys report an impossibly
        young generation so callers fall back to shipping the graph.
        """
        with self._lock:
            return self._key_generation.get(key, self.generation + 1)

    def get(self, key: str) -> GraphHandle:
        """The handle registered under ``key``; raises if unknown.

        Applies the same staleness protocol as :meth:`intern`: a
        registered graph whose edge count drifted is re-interned before
        use.  A fresh resolution counts as an interning hit — reuse of a
        registered graph is exactly what the store exists for.
        """
        with self._lock:
            handle = self._named.get(key)
            stale = handle is not None and handle.stale
            if handle is not None and not stale:
                self.hits += 1
        if handle is None:
            raise ServiceError(
                f"no graph registered under {key!r}; "
                f"known keys: {', '.join(sorted(self._named)) or '(none)'}"
            )
        if stale:
            return self.register(key, handle.graph)
        return handle

    def invalidate(self, graph: Graph) -> None:
        """Drop the handle for ``graph`` (after an in-place mutation)."""
        with self._lock:
            handle = self._handles.pop(graph, None)
            if handle is not None:
                for key in [k for k, h in self._named.items() if h is handle]:
                    del self._named[key]
                    self._pinned.pop(key, None)
                    self._key_generation.pop(key, None)
        if handle is not None:
            handle.close()

    def keys(self) -> List[str]:
        """Names of all registered graphs."""
        with self._lock:
            return sorted(self._named)

    def handles(self) -> Iterator[GraphHandle]:
        """All live handles (weak and named)."""
        with self._lock:
            return iter(list(self._handles.values()))

    def named_handles(self) -> List[GraphHandle]:
        """Handles of all registered (named, strongly pinned) graphs."""
        with self._lock:
            return list(self._named.values())

    def stats(self) -> Dict[str, int]:
        """Interning counters: hits, misses, prefetches, live handles."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "graphs": len(self._handles),
                "named": len(self._named),
                "generation": self.generation,
                "prefetched": self.prefetched,
                "packed": self.packed,
                "prefetch_errors": self.prefetch_errors,
                "prefetch_pending": sum(
                    1 for t in self._prefetch_threads if t.is_alive()
                ),
            }

    def close(self) -> None:
        """Close every handle's warm pools and forget all graphs."""
        self.drain_prefetch(timeout=30.0)
        with self._lock:
            handles = list(self._handles.values())
            self._handles = weakref.WeakKeyDictionary()
            self._named.clear()
            self._pinned.clear()
            self._key_generation.clear()
        for handle in handles:
            handle.close()
