"""Graph interning: one substrate build per graph, shared across requests.

Every summarizer run needs the dense integer-id substrate
(:class:`~repro.graphs.index.NodeIndex` + adjacency) and, for parallel
shingle sweeps, a frozen CSR view and a forked worker pool.  A one-shot
``engine.run`` call rebuilds all of that per invocation; a serving
workload issuing many small requests against the same graphs should not.
:class:`GraphStore` interns graphs by object identity and hands out
:class:`GraphHandle` objects that memoize the substrate views lazily and
keep per-graph warm shingle pools open across requests.

Everything a handle shares is **read-only for summarizer runs** (the
input adjacency never changes during a run), so one handle can serve any
number of concurrent jobs; builds are serialized per handle with a lock
so two racing jobs cannot duplicate work.

Staleness: handles remember the graph's :attr:`~repro.graphs.graph.Graph.
mutation_count` at build time.  If a caller mutates a graph between
requests (the ``Graph`` type is mutable), the next ``intern`` / ``get``
detects the drift — including count-preserving edit sequences — and
rebuilds the handle.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Iterator, List, Optional

from repro.engine.execution import ExecutionConfig, ProcessShardExecutor
from repro.engine.hooks import GraphResources
from repro.exceptions import ServiceError
from repro.graphs.dense import CSRAdjacency, DenseAdjacency
from repro.graphs.graph import Graph

__all__ = ["GraphHandle", "GraphStore"]


class GraphHandle(GraphResources):
    """Memoized substrate views (and warm pools) for one interned graph.

    Implements the :class:`~repro.engine.hooks.GraphResources` protocol,
    so a handle can be passed straight into ``Summarizer.summarize`` as
    the run's ``resources``.
    """

    def __init__(self, graph: Graph, key: Optional[str] = None, generation: int = 0) -> None:
        # Weak, not strong: the handle lives as a value of the store's
        # weak-keyed table, so a strong graph reference here would keep
        # the key reachable through the value and no anonymous graph
        # could ever be evicted.  Named registrations pin the graph
        # separately (see :meth:`GraphStore.register`).
        self._graph = weakref.ref(graph)
        self.key = key
        #: Store generation at creation; the process-mode service uses it
        #: to decide whether a forked worker snapshot already holds this
        #: handle's graph.
        self.generation = generation
        self._mutations_at_build = graph.mutation_count
        self._lock = threading.Lock()
        self._dense: Optional[DenseAdjacency] = None
        self._csr: Optional[CSRAdjacency] = None
        self._pools: Dict[int, ProcessShardExecutor] = {}
        self._builds = 0

    @property
    def graph(self) -> Graph:
        """The interned graph; raises if it was garbage-collected."""
        graph = self._graph()
        if graph is None:
            raise ServiceError(
                "the interned graph was garbage-collected; keep a reference "
                "to the graph (or register it under a name) while using its handle"
            )
        return graph

    # -- GraphResources protocol ---------------------------------------
    def dense(self) -> DenseAdjacency:
        """The interned dense substrate, built on first use."""
        if self._dense is None:
            with self._lock:
                if self._dense is None:
                    self._builds += 1
                    self._dense = DenseAdjacency.from_graph(self.graph)
        return self._dense

    def csr(self) -> CSRAdjacency:
        """The interned frozen CSR view, built on first use."""
        if self._csr is None:
            dense = self.dense()
            with self._lock:
                if self._csr is None:
                    self._csr = dense.freeze()
        return self._csr

    def shingle_executor(self, execution: Optional[ExecutionConfig]):
        """A warm per-graph shingle pool for ``execution``, or ``None``.

        Mirrors the gating of the shingle phases (parallel configuration,
        graph clears the size floor); pools are keyed by worker count and
        stay open across requests — their forked workers inherited this
        handle's immutable ``(csr, labels)`` context, so every later
        request against the same graph skips both the substrate build and
        the fork.  Closed by :meth:`close` when the store drops the
        handle.
        """
        if (
            execution is None
            or not execution.parallel
            or self.graph.num_nodes < execution.shingle_parallel_min_nodes
        ):
            return None
        pool = self._pools.get(execution.workers)
        if pool is None:
            # Build the context before taking the lock: csr()/dense()
            # acquire the same non-reentrant lock internally.
            context = (self.csr(), self.dense().index.labels())
            with self._lock:
                pool = self._pools.get(execution.workers)
                if pool is None:
                    pool = ProcessShardExecutor(execution.workers, context=context)
                    self._pools[execution.workers] = pool
        return pool

    # -- lifecycle ------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether the graph was structurally mutated since the handle was built.

        Tracks :attr:`Graph.mutation_count`, so even count-preserving
        edit sequences (remove one edge, add another) are detected.
        """
        return self.graph.mutation_count != self._mutations_at_build

    @property
    def builds(self) -> int:
        """Number of substrate builds this handle performed (0 or 1)."""
        return self._builds

    def close(self) -> None:
        """Shut down the handle's warm pools (idempotent)."""
        with self._lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.close()

    def __repr__(self) -> str:
        return (f"GraphHandle(key={self.key!r}, nodes={self.graph.num_nodes}, "
                f"edges={self.graph.num_edges})")


def _close_if_alive(handle_ref: "weakref.ref[GraphHandle]") -> None:
    """Graph finalizer: close the handle's pools iff it is still alive."""
    handle = handle_ref()
    if handle is not None:
        handle.close()


class GraphStore:
    """Interning table: graph → :class:`GraphHandle`.

    Graphs are interned by *object identity* (``Graph`` hashes by
    identity), through a weak mapping — the store never keeps an
    anonymous graph alive on its own.  Named graphs registered via
    :meth:`register` are additionally pinned strongly under their key, so
    a serving batch file can reference them by name.

    ``hits`` / ``misses`` count :meth:`intern` lookups and are the
    serving layer's cache-effectiveness signal.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._handles: "weakref.WeakKeyDictionary[Graph, GraphHandle]" = (
            weakref.WeakKeyDictionary()
        )
        self._named: Dict[str, GraphHandle] = {}
        #: Strong references for named graphs (handles only hold weakrefs).
        self._pinned: Dict[str, Graph] = {}
        #: Store generation at which each *key* was (last) registered —
        #: distinct from the handle's creation generation: re-registering
        #: an already-interned graph under a new key must still look
        #: "young" to pools forked before that key existed.
        self._key_generation: Dict[str, int] = {}
        #: Bumped whenever a new handle is created; process-mode services
        #: compare it against their forked snapshot's generation.
        self.generation = 0
        self.hits = 0
        self.misses = 0

    def intern(self, graph: Graph, key: Optional[str] = None) -> GraphHandle:
        """The (possibly new) handle for ``graph``; counts hit/miss."""
        with self._lock:
            handle = self._handles.get(graph)
            if handle is not None and not handle.stale:
                self.hits += 1
                return handle
            if handle is not None:
                handle.close()
            self.misses += 1
            self.generation += 1
            handle = GraphHandle(graph, key=key, generation=self.generation)
            self._handles[graph] = handle
            # If the graph is collected, the weak table drops the handle;
            # the finalizer makes sure its warm pools go with it.  It
            # must hold the handle weakly — a strong reference would pin
            # every superseded (stale-replaced) handle, and its whole
            # substrate, for the graph's lifetime.
            weakref.finalize(graph, _close_if_alive, weakref.ref(handle))
            return handle

    def register(self, key: str, graph: Graph) -> GraphHandle:
        """Intern ``graph`` under a stable name (strongly referenced)."""
        handle = self.intern(graph, key=key)
        with self._lock:
            if self._named.get(key) is not handle:
                # New or rebound key: pools forked earlier cannot resolve
                # it, so the binding must look younger than they are.
                self.generation += 1
                self._key_generation[key] = self.generation
            self._named[key] = handle
            self._pinned[key] = graph
        return handle

    def key_generation(self, key: str) -> int:
        """Store generation at which ``key`` was last registered.

        Process-mode services compare this against their forked
        snapshot's generation to decide whether a worker can resolve the
        key from inherited memory.  Unknown keys report an impossibly
        young generation so callers fall back to shipping the graph.
        """
        with self._lock:
            return self._key_generation.get(key, self.generation + 1)

    def get(self, key: str) -> GraphHandle:
        """The handle registered under ``key``; raises if unknown.

        Applies the same staleness protocol as :meth:`intern`: a
        registered graph whose edge count drifted is re-interned before
        use.  A fresh resolution counts as an interning hit — reuse of a
        registered graph is exactly what the store exists for.
        """
        with self._lock:
            handle = self._named.get(key)
            stale = handle is not None and handle.stale
            if handle is not None and not stale:
                self.hits += 1
        if handle is None:
            raise ServiceError(
                f"no graph registered under {key!r}; "
                f"known keys: {', '.join(sorted(self._named)) or '(none)'}"
            )
        if stale:
            return self.register(key, handle.graph)
        return handle

    def invalidate(self, graph: Graph) -> None:
        """Drop the handle for ``graph`` (after an in-place mutation)."""
        with self._lock:
            handle = self._handles.pop(graph, None)
            if handle is not None:
                for key in [k for k, h in self._named.items() if h is handle]:
                    del self._named[key]
                    self._pinned.pop(key, None)
                    self._key_generation.pop(key, None)
        if handle is not None:
            handle.close()

    def keys(self) -> List[str]:
        """Names of all registered graphs."""
        with self._lock:
            return sorted(self._named)

    def handles(self) -> Iterator[GraphHandle]:
        """All live handles (weak and named)."""
        with self._lock:
            return iter(list(self._handles.values()))

    def named_handles(self) -> List[GraphHandle]:
        """Handles of all registered (named, strongly pinned) graphs."""
        with self._lock:
            return list(self._named.values())

    def stats(self) -> Dict[str, int]:
        """Interning counters: hits, misses, live handles, generation."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "graphs": len(self._handles),
                "named": len(self._named),
                "generation": self.generation,
            }

    def close(self) -> None:
        """Close every handle's warm pools and forget all graphs."""
        with self._lock:
            handles = list(self._handles.values())
            self._handles = weakref.WeakKeyDictionary()
            self._named.clear()
            self._pinned.clear()
            self._key_generation.clear()
        for handle in handles:
            handle.close()
