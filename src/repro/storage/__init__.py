"""Binary graph storage: packed CSR containers, mmap loads, parallel ingest.

This subsystem is the persistence layer between "dataset on disk" and
"hot in-memory substrate":

* :mod:`repro.storage.format` — the versioned single-file container
  (magic + checksummed sections; delta/varint ``indptr``, fixed
  narrow-width ``indices``, optional label dictionary);
* :mod:`repro.storage.mapped` — :class:`MappedCSR` /
  :class:`StoredGraph`, the zero-copy mmap-backed views that plug into
  the summarizers as prebuilt substrate ``resources``;
* :mod:`repro.storage.ingest` — sharded parallel edge-list parsing
  behind ``read_edge_list(..., workers=N)``;
* :mod:`repro.storage.cache` — the content-addressed on-disk cache the
  CLI's ``--cache-dir`` and the serving layer's
  :class:`~repro.service.store.GraphStore` persistence use;
* :mod:`repro.storage.summary_store` — the ``SUMM`` section family that
  persists summaries *inside* the container format, the
  content-addressed :class:`SummaryCache` behind warm-start serving,
  and resumable per-iteration job checkpoints.

Quick start::

    from repro import storage

    storage.pack(graph, "graph.slg")        # once
    stored = storage.load("graph.slg")      # near-instant, mmap-backed
    result = engine.run("slugger", stored.graph(), seed=0,
                        resources=stored)   # zero-copy CSR injected

Determinism: for a fixed seed, a run on a ``storage.load``-ed graph is
bit-identical to the same run on the text-parsed original — packing
preserves node insertion order and the substrate views are canonical in
graph content.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.graphs.dense import DenseAdjacency
from repro.graphs.graph import Graph
from repro.storage.cache import CachedEdgeList, GraphCache, file_digest
from repro.storage.format import (
    CONTAINER_SUFFIX,
    ContainerInfo,
    container_digest,
    read_container_info,
    write_container,
)
from repro.storage.ingest import sharded_read_edge_list
from repro.storage.mapped import MappedCSR, StoredGraph, load
from repro.storage.summary_store import (
    CHECKPOINT_SUFFIX,
    StoredSummary,
    SummaryCache,
    SummaryCheckpoint,
    SummaryMeta,
    config_fingerprint,
    encode_summary_container,
    load_checkpoint,
    load_summary,
    read_summary_meta,
    summary_fingerprint,
    summary_key,
)

__all__ = [
    "CHECKPOINT_SUFFIX",
    "CONTAINER_SUFFIX",
    "CachedEdgeList",
    "ContainerInfo",
    "GraphCache",
    "MappedCSR",
    "StoredGraph",
    "StoredSummary",
    "SummaryCache",
    "SummaryCheckpoint",
    "SummaryMeta",
    "config_fingerprint",
    "container_digest",
    "encode_summary_container",
    "file_digest",
    "inspect_container",
    "load",
    "load_checkpoint",
    "load_summary",
    "pack",
    "read_container_info",
    "read_summary_meta",
    "sharded_read_edge_list",
    "summary_fingerprint",
    "summary_key",
    "write_container",
]

PathLike = Union[str, Path]


def pack(graph: Graph, path: PathLike, *, csr=None) -> ContainerInfo:
    """Pack ``graph`` into a binary container at ``path``.

    ``csr`` optionally supplies an already-frozen CSR view (e.g. from an
    interned service handle) so the pack reuses it instead of rebuilding
    the substrate from the graph.
    """
    if csr is None:
        csr = DenseAdjacency.from_graph(graph).freeze()
    return write_container(path, csr)


def inspect_container(path: PathLike, verify: bool = True) -> ContainerInfo:
    """Header + section metadata of a container (checksummed by default)."""
    return read_container_info(path, verify=verify)
