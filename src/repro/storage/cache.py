"""Content-addressed on-disk cache of packed graph containers.

A :class:`GraphCache` is a flat directory of ``<sha256>.slg`` container
files keyed by *content digest*, serving two workloads:

* **Edge-list acceleration** (:meth:`GraphCache.fetch_edge_list`): the
  digest of the *source text file* keys a packed container, so the first
  load of a file parses + packs and every later load memory-maps — the
  CLI's ``--cache-dir`` flag and the serving layer's input files ride
  this.  Keying by source bytes (cheap streaming SHA-256, no parse
  needed) is what lets a cache hit skip the text parse entirely.
* **Substrate persistence** (:meth:`GraphCache.store_csr`): the serving
  layer's :class:`~repro.service.store.GraphStore` packs each interned
  substrate under its *graph-content* digest
  (:func:`repro.storage.format.container_digest`) in the registration
  prefetch lane, so a restarted service — or any other process — can
  reload the exact substrate from disk instead of rebuilding it.

Both keys live in one namespace: every entry is a self-describing
container addressed by the SHA-256 of *something* immutable, and
:meth:`entries` inspects them uniformly.  Writes go through the format
layer's atomic temp-then-rename, so concurrent processes sharing a cache
directory race benignly.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple, Union

from repro.exceptions import ContainerFormatError
from repro.graphs.dense import DenseAdjacency
from repro.graphs.graph import Graph
from repro.storage.format import (
    CONTAINER_SUFFIX,
    ContainerInfo,
    encode_container,
    read_container_info,
    write_container,
    write_container_image,
)
from repro.storage.mapped import StoredGraph, load

__all__ = ["CachedEdgeList", "GraphCache", "file_digest"]

PathLike = Union[str, Path]

_CHUNK = 1 << 20


def file_digest(path: PathLike) -> str:
    """Streaming SHA-256 of a file's bytes (the edge-list cache key)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                return digest.hexdigest()
            digest.update(chunk)


class CachedEdgeList(NamedTuple):
    """Outcome of a cached edge-list load.

    ``graph`` is always usable, and ``stored`` is the mmap-backed
    :class:`~repro.storage.mapped.StoredGraph` of the cached container
    on hits *and* misses (a miss packs, then maps the fresh container) —
    inject it as the run's ``resources`` for zero-copy substrate reuse.
    Only a torn concurrent write can leave it ``None``.

    With ``materialize=False`` a hit's ``graph`` is the read-only
    :class:`~repro.graphs.view.CSRGraphView` facade instead of a
    materialized :class:`Graph` — the zero-copy serving path.
    """

    graph: Graph
    stored: Optional[StoredGraph]
    hit: bool
    digest: str
    container_path: Path


class GraphCache:
    """A directory of content-addressed packed graph containers."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._stats_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "mmap_loads": 0, "packs": 0, "corrupt": 0,
        }

    def _count(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[key] += amount

    def stats(self) -> Dict[str, int]:
        """Lifetime cache counters (this process only).

        ``hits``/``misses`` count :meth:`fetch_edge_list` outcomes,
        ``mmap_loads`` successful :meth:`load` maps, ``packs`` containers
        actually written by :meth:`store_csr`, and ``corrupt`` unreadable
        containers discarded and re-packed.  Telemetry only — the
        on-disk cache itself is shared across processes and has no
        process-local state.
        """
        with self._stats_lock:
            return dict(self._counters)

    def container_path(self, digest: str) -> Path:
        """Where the container for ``digest`` lives (whether or not it exists)."""
        return self.directory / f"{digest}{CONTAINER_SUFFIX}"

    def has(self, digest: str) -> bool:
        """Whether a container for ``digest`` is present."""
        return self.container_path(digest).is_file()

    def load(self, digest: str, verify: bool = True) -> Optional[StoredGraph]:
        """Memory-map the container for ``digest``, or ``None`` if absent."""
        path = self.container_path(digest)
        if not path.is_file():
            return None
        stored = load(path, verify=verify)
        self._count("mmap_loads")
        return stored

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def store_csr(self, csr, digest: Optional[str] = None) -> Tuple[str, Path, bool]:
        """Pack a frozen CSR under its content digest (idempotent).

        Returns ``(digest, path, created)`` — ``created`` is ``False``
        when the container already existed, making repeated registration
        of the same graph content a metadata no-op.  When the digest must
        be derived from the content, the container is encoded exactly
        once (the same image is hashed and written).
        """
        image = None
        if digest is None:
            image = encode_container(csr)
            digest = hashlib.sha256(image).hexdigest()
        path = self.container_path(digest)
        if path.is_file():
            return digest, path, False
        if image is None:
            write_container(path, csr)
        else:
            write_container_image(path, image)
        self._count("packs")
        return digest, path, True

    def store_graph(self, graph: Graph, digest: Optional[str] = None) -> Tuple[str, Path, bool]:
        """Pack a label-keyed graph (builds the CSR) under its digest."""
        return self.store_csr(DenseAdjacency.from_graph(graph).freeze(), digest=digest)

    # ------------------------------------------------------------------
    # Edge-list front door
    # ------------------------------------------------------------------
    def fetch_edge_list(
        self, path: PathLike, workers: int = 1, materialize: bool = True
    ) -> CachedEdgeList:
        """Load an edge-list file through the cache.

        Hit: memory-map the container keyed by the file's byte digest —
        no text parse; ``stored`` carries the zero-copy substrate.
        Miss: parse the text (sharded when ``workers > 1``), pack the
        result under the file digest, and memory-map the fresh container
        — so ``stored`` is available either way and downstream consumers
        (handle seeding, resource injection) never need a second pack.
        An unreadable cached container (e.g. torn by an external
        process) is discarded and treated as a miss rather than failing
        the load.

        ``materialize=False`` keeps a hit entirely on the substrate:
        ``graph`` is then :meth:`StoredGraph.view` (a read-only
        ``CSRGraphView``; zero rows thawed, zero nodes materialized)
        rather than the O(m) :meth:`StoredGraph.graph` materialization.
        Misses parsed the text anyway, so they return the parsed graph
        either way.
        """
        from repro.graphs.io import read_edge_list

        digest = file_digest(path)
        if self.has(digest):
            try:
                stored = self.load(digest)
            except ContainerFormatError:
                self._count("corrupt")
                self.container_path(digest).unlink(missing_ok=True)
            else:
                if stored is not None:
                    self._count("hits")
                    return CachedEdgeList(
                        graph=stored.graph() if materialize else stored.view(),
                        stored=stored,
                        hit=True,
                        digest=digest,
                        container_path=self.container_path(digest),
                    )
        self._count("misses")
        graph = read_edge_list(path, workers=workers)
        dense = DenseAdjacency.from_graph(graph)
        _, container_path, _ = self.store_csr(dense.freeze(), digest=digest)
        try:
            stored = self.load(digest)
        except ContainerFormatError:  # pragma: no cover - torn by a racer
            stored = None
        if stored is not None:
            # The substrate was just built to pack the container; seed
            # the mapped views with it so the cold run doesn't thaw and
            # re-materialize everything a second time.
            stored.seed(dense=dense, graph=graph)
        return CachedEdgeList(
            graph=graph,
            stored=stored,
            hit=False,
            digest=digest,
            container_path=container_path,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def digests(self) -> List[str]:
        """Digests of every container currently in the cache."""
        return sorted(
            entry.stem for entry in self.directory.glob(f"*{CONTAINER_SUFFIX}")
        )

    def entries(self) -> Iterator[ContainerInfo]:
        """Header metadata of every cached container (skips unreadable files)."""
        for digest in self.digests():
            try:
                yield read_container_info(self.container_path(digest))
            except ContainerFormatError:
                continue

    def total_bytes(self) -> int:
        """Bytes currently occupied by cached containers."""
        return sum(
            entry.stat().st_size
            for entry in self.directory.glob(f"*{CONTAINER_SUFFIX}")
        )

    def __repr__(self) -> str:
        return f"GraphCache(directory={str(self.directory)!r})"
