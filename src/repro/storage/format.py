"""The versioned binary graph container: magic + header + checksummed sections.

Text edge lists are convenient for interchange but expensive to load:
every run re-tokenizes, re-parses, and re-deduplicates millions of
lines.  Production graph systems (WebGraph, swh-graph) compress the
graph *once* into a compact on-disk representation and then memory-map
it on every subsequent load.  This module defines that representation
for the repro library — a single-file container holding a frozen CSR
adjacency plus an optional node-label dictionary:

``[header][section table][section payloads...]``

* **Header** (32 bytes, little-endian): magic ``b"SLGRPH"``, format
  version, flags, ``num_nodes``, ``num_edges``, the byte width of one
  neighbor index, and the section count.
* **Section table**: one 32-byte entry per section — a 4-byte tag, the
  absolute payload offset, the payload length, and a CRC-32 checksum.
  Payloads are 8-byte aligned so fixed-width sections can be cast
  straight out of a memory map.
* **``IPTR``** — the CSR ``indptr`` array, *delta/varint* encoded: the
  deltas are exactly the node degrees, and small degrees dominate real
  graphs, so LEB128 packs the ``n+1`` offsets into roughly one byte per
  node.  Decoded eagerly at load (it is the small ``O(n)`` part).
* **``INDX``** — the CSR ``indices`` array as *fixed-width* little-endian
  unsigned integers, using the narrowest of 1/2/4/8 bytes that fits the
  largest node id.  Fixed width is what makes the section directly
  mmap-addressable (:class:`repro.storage.mapped.MappedCSR` casts a
  ``memoryview`` over it, zero-copy); the narrow width is what makes the
  container ~2-4x smaller than the text edge list it replaces.
* **``LBLS``** — the id → label dictionary for graphs whose node labels
  are not already the contiguous integers ``0..n-1``; omitted (flag
  clear) in the common identity case.  Each entry is a type byte
  followed by a zigzag-varint (``int`` labels) or a length-prefixed
  UTF-8 string.

Neighbor runs are sorted ascending (inherited from
:class:`~repro.graphs.dense.CSRAdjacency`), which both enables binary
-search membership tests on the mapped view and makes the container a
*canonical* encoding of the graph: equal graphs produce byte-identical
payloads, so :func:`container_digest` is a usable content address.

Every malformed input — bad magic, unsupported version, truncation,
out-of-range sections, checksum mismatch — raises
:class:`~repro.exceptions.ContainerFormatError` (a
:class:`~repro.exceptions.GraphFormatError`); a corrupted container can
never deserialize into a silently wrong graph.
"""

from __future__ import annotations

import hashlib
import os
import struct
import sys
import threading
import zlib
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ContainerFormatError, GraphFormatError

__all__ = [
    "CONTAINER_SUFFIX",
    "ContainerInfo",
    "FLAG_LABELS",
    "FLAG_NO_CSR",
    "FLAG_SUMMARY",
    "FORMAT_VERSION",
    "MAGIC",
    "SectionInfo",
    "container_digest",
    "decode_indptr",
    "decode_labels",
    "decode_varint",
    "encode_container",
    "encode_image",
    "encode_varint",
    "index_width_for",
    "read_container_info",
    "section_bytes",
    "typecode_for_width",
    "verify_sections",
    "write_container",
    "write_container_image",
]

PathLike = Union[str, Path]

MAGIC = b"SLGRPH"
FORMAT_VERSION = 1
#: Conventional file suffix for containers (not enforced on load).
CONTAINER_SUFFIX = ".slg"

#: Header flag: a ``LBLS`` section is present (labels are not the
#: identity mapping ``id -> id``).
FLAG_LABELS = 0x1

#: Header flag: the container carries a ``SUMM`` section family (a
#: serialized summary riding alongside — or instead of — the CSR); see
#: :mod:`repro.storage.summary_store` for the family's codecs.
FLAG_SUMMARY = 0x2

#: Header flag: the container holds **no** CSR sections (``IPTR`` /
#: ``INDX``) — it is a summary/checkpoint artifact addressed to a graph
#: stored elsewhere.  :class:`~repro.storage.mapped.MappedCSR` refuses
#: such containers; the summary store reads them directly.
FLAG_NO_CSR = 0x4

#: ``<`` little-endian: magic, version, flags, num_nodes, num_edges,
#: index width, 3 pad bytes, section count.
_HEADER = struct.Struct("<6sHHQQB3xH")
#: tag, absolute offset, payload length, CRC-32, 4 pad bytes.
_SECTION = struct.Struct("<4sQQI4x")
_ALIGNMENT = 8

TAG_INDPTR = b"IPTR"
TAG_INDICES = b"INDX"
TAG_LABELS = b"LBLS"

_LABEL_INT = 0
_LABEL_STR = 1

#: index byte width -> array typecode for the fixed-width INDX section.
_WIDTH_TYPECODES = {1: "B", 2: "H", 4: "I", 8: "Q"}


# ----------------------------------------------------------------------
# Varint primitives (unsigned LEB128 + zigzag for signed labels)
# ----------------------------------------------------------------------
def encode_varint(value: int, out: bytearray) -> None:
    """Append the unsigned LEB128 encoding of ``value`` to ``out``."""
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, position: int) -> Tuple[int, int]:
    """Decode one LEB128 varint at ``position``; returns ``(value, next)``."""
    value = 0
    shift = 0
    length = len(data)
    while True:
        if position >= length:
            raise ContainerFormatError("truncated varint in container section")
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7


def _zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one (small magnitudes stay small)."""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _zigzag_decode(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


def index_width_for(num_nodes: int) -> int:
    """The narrowest of 1/2/4/8 bytes that can address every node id."""
    largest = max(0, num_nodes - 1)
    for width in (1, 2, 4, 8):
        if largest < (1 << (8 * width)):
            return width
    raise ContainerFormatError(f"node count {num_nodes} exceeds 64-bit addressing")


# ----------------------------------------------------------------------
# Section payload codecs
# ----------------------------------------------------------------------
def _encode_indptr(indptr: Sequence[int], num_nodes: int) -> bytes:
    """Delta/varint-encode ``indptr`` (the deltas are the node degrees)."""
    out = bytearray()
    previous = 0
    for position in range(num_nodes + 1):
        value = indptr[position]
        if value < previous:
            raise GraphFormatError("indptr must be monotone non-decreasing")
        encode_varint(value - previous, out)
        previous = value
    return bytes(out)


def decode_indptr(data: bytes, num_nodes: int, num_edges: int) -> "array":
    """Decode a delta/varint ``IPTR`` payload back into a flat offset array."""
    indptr = array("q", bytes(8 * (num_nodes + 1)))
    position = 0
    total = 0
    for node in range(num_nodes + 1):
        delta, position = decode_varint(data, position)
        total += delta
        indptr[node] = total
    if position != len(data):
        raise ContainerFormatError(
            f"IPTR section holds {len(data) - position} trailing bytes"
        )
    if total != 2 * num_edges:
        raise ContainerFormatError(
            f"IPTR section sums to {total} entries, header promises {2 * num_edges}"
        )
    return indptr


def _encode_indices(csr, width: int) -> bytes:
    """Pack the CSR ``indices`` run at fixed ``width`` bytes per entry."""
    typecode = _WIDTH_TYPECODES[width]
    packed = array(typecode, csr.indices)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        packed.byteswap()
    return packed.tobytes()


def _encode_labels(labels: Sequence) -> bytes:
    """Encode the id → label dictionary (int and str labels only)."""
    out = bytearray()
    for label in labels:
        if type(label) is int:
            out.append(_LABEL_INT)
            encode_varint(_zigzag_encode(label), out)
        elif type(label) is str:
            encoded = label.encode("utf-8")
            out.append(_LABEL_STR)
            encode_varint(len(encoded), out)
            out.extend(encoded)
        else:
            raise GraphFormatError(
                f"container labels must be int or str, got {type(label).__name__} "
                f"({label!r}); relabel the graph before packing"
            )
    return bytes(out)


def decode_labels(data: bytes, num_nodes: int) -> List:
    """Decode a ``LBLS`` payload back into the id-ordered label list."""
    labels: List = []
    position = 0
    for _ in range(num_nodes):
        if position >= len(data):
            raise ContainerFormatError("LBLS section ends before every node has a label")
        kind = data[position]
        position += 1
        if kind == _LABEL_INT:
            value, position = decode_varint(data, position)
            labels.append(_zigzag_decode(value))
        elif kind == _LABEL_STR:
            length, position = decode_varint(data, position)
            if position + length > len(data):
                raise ContainerFormatError("truncated string label in LBLS section")
            try:
                labels.append(data[position:position + length].decode("utf-8"))
            except UnicodeDecodeError as error:
                raise ContainerFormatError(f"undecodable string label: {error}") from None
            position += length
        else:
            raise ContainerFormatError(f"unknown label type byte {kind}")
    if position != len(data):
        raise ContainerFormatError(
            f"LBLS section holds {len(data) - position} trailing bytes"
        )
    return labels


def _identity_labels(labels: Sequence) -> bool:
    """Whether ``labels`` is exactly the identity mapping ``id -> id``."""
    return all(
        type(label) is int and label == node_id for node_id, label in enumerate(labels)
    )


# ----------------------------------------------------------------------
# Container metadata
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SectionInfo:
    """One section-table entry: where a payload lives and its checksum."""

    tag: str
    offset: int
    length: int
    crc32: int


@dataclass(frozen=True)
class ContainerInfo:
    """Decoded header + section table of one container file."""

    path: Optional[str]
    version: int
    flags: int
    num_nodes: int
    num_edges: int
    index_width: int
    file_bytes: int
    sections: Tuple[SectionInfo, ...] = field(default_factory=tuple)

    @property
    def has_labels(self) -> bool:
        """Whether the container carries an explicit label dictionary."""
        return bool(self.flags & FLAG_LABELS)

    @property
    def has_summary(self) -> bool:
        """Whether the container carries a serialized summary (``SUMM`` family)."""
        return bool(self.flags & FLAG_SUMMARY)

    @property
    def has_csr(self) -> bool:
        """Whether the container holds the CSR sections (``IPTR``/``INDX``)."""
        return not self.flags & FLAG_NO_CSR

    def section(self, tag: bytes) -> SectionInfo:
        """The section table entry for ``tag``; raises if absent."""
        name = tag.decode("ascii")
        for entry in self.sections:
            if entry.tag == name:
                return entry
        raise ContainerFormatError(f"container has no {name!r} section")

    def maybe_section(self, tag: bytes) -> Optional[SectionInfo]:
        """The section table entry for ``tag``, or ``None`` when absent."""
        name = tag.decode("ascii")
        for entry in self.sections:
            if entry.tag == name:
                return entry
        return None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-compatible description (the CLI ``inspect`` payload)."""
        return {
            "path": self.path,
            "version": self.version,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "index_width": self.index_width,
            "has_labels": self.has_labels,
            "has_summary": self.has_summary,
            "has_csr": self.has_csr,
            "file_bytes": self.file_bytes,
            "sections": [
                {
                    "tag": entry.tag,
                    "offset": entry.offset,
                    "length": entry.length,
                    "crc32": entry.crc32,
                }
                for entry in self.sections
            ],
        }


# ----------------------------------------------------------------------
# Encoding (pack) side
# ----------------------------------------------------------------------
def _build_sections(csr) -> Tuple[int, int, List[Tuple[bytes, bytes]]]:
    """Encode every section payload for a frozen CSR-like object.

    ``csr`` needs ``num_nodes`` / ``num_edges`` / ``indptr`` / ``indices``
    and a ``NodeIndex``-style ``index`` (for the label dictionary) — both
    :class:`~repro.graphs.dense.CSRAdjacency` and
    :class:`~repro.storage.mapped.MappedCSR` qualify, so containers can
    be re-packed from either.
    """
    width = index_width_for(csr.num_nodes)
    sections: List[Tuple[bytes, bytes]] = [
        (TAG_INDPTR, _encode_indptr(csr.indptr, csr.num_nodes)),
        (TAG_INDICES, _encode_indices(csr, width)),
    ]
    flags = 0
    labels = csr.index.labels()
    if not _identity_labels(labels):
        flags |= FLAG_LABELS
        sections.append((TAG_LABELS, _encode_labels(labels)))
    return flags, width, sections


def encode_container(csr, extra_sections: Optional[Sequence[Tuple[bytes, bytes]]] = None,
                     extra_flags: int = 0) -> bytes:
    """The complete container image for ``csr`` as one bytes object.

    The encoding is canonical — equal graphs yield byte-identical
    containers — which is what makes :func:`container_digest` a content
    address.  ``extra_sections`` appends additional checksummed payloads
    (the summary store's ``SUMM`` family) after the CSR sections, in the
    order given, and ``extra_flags`` is OR-ed into the header flags;
    canonical callers must pass deterministic payloads to keep the
    content-address property.
    """
    flags, width, sections = _build_sections(csr)
    if extra_sections:
        sections = sections + list(extra_sections)
    return encode_image(
        flags | extra_flags, csr.num_nodes, csr.num_edges, width, sections
    )


def encode_image(flags: int, num_nodes: int, num_edges: int, width: int,
                 sections: Sequence[Tuple[bytes, bytes]]) -> bytes:
    """Assemble a container image from already-encoded section payloads.

    The low-level assembler behind :func:`encode_container`; the summary
    store also uses it directly for CSR-less checkpoint containers
    (``flags`` carrying :data:`FLAG_NO_CSR`).
    """
    header_size = _HEADER.size + _SECTION.size * len(sections)
    table: List[Tuple[bytes, int, int, int]] = []
    chunks: List[bytes] = []
    offset = _aligned(header_size)
    padding = offset - header_size
    for tag, payload in sections:
        chunks.append(payload)
        table.append((tag, offset, len(payload), zlib.crc32(payload)))
        next_offset = _aligned(offset + len(payload))
        chunks.append(b"\x00" * (next_offset - offset - len(payload)))
        offset = next_offset
    out = bytearray()
    out += _HEADER.pack(
        MAGIC, FORMAT_VERSION, flags, num_nodes, num_edges, width, len(table)
    )
    for tag, section_offset, length, crc in table:
        out += _SECTION.pack(tag, section_offset, length, crc)
    out += b"\x00" * padding
    for chunk in chunks:
        out += chunk
    return bytes(out)


def _aligned(offset: int) -> int:
    remainder = offset % _ALIGNMENT
    return offset if not remainder else offset + (_ALIGNMENT - remainder)


def write_container(path: PathLike, csr) -> ContainerInfo:
    """Write ``csr`` as a container file at ``path`` (atomic via rename)."""
    return write_container_image(path, encode_container(csr))


def write_container_image(path: PathLike, image: bytes) -> ContainerInfo:
    """Write an already-encoded container image atomically (temp + rename).

    The temp-then-rename protocol means a crash mid-write can never leave
    a half-written container under the final name; concurrent writers of
    the same content — across processes *and* across threads (the temp
    name carries both pid and thread id) — race benignly: last rename
    wins, contents equal.  Callers that already hold the image (e.g. the
    cache, which encoded it once to compute the content digest) use this
    to avoid re-encoding.
    """
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    temp_path = file_path.with_name(
        f".{file_path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        with temp_path.open("wb") as handle:
            handle.write(image)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, file_path)
    finally:
        if temp_path.exists():  # pragma: no cover - only on write failure
            temp_path.unlink()
    return _parse_container(memoryview(image), str(file_path))


def container_digest(csr) -> str:
    """SHA-256 content address of ``csr``'s canonical container encoding."""
    return hashlib.sha256(encode_container(csr)).hexdigest()


# ----------------------------------------------------------------------
# Decoding (load) side
# ----------------------------------------------------------------------
def _parse_container(view, path: Optional[str]) -> ContainerInfo:
    """Parse and validate the header + section table of a container image."""
    total = len(view)
    if total < _HEADER.size:
        raise ContainerFormatError(
            f"{path or '<buffer>'}: file is {total} bytes, smaller than the "
            f"{_HEADER.size}-byte container header"
        )
    magic, version, flags, num_nodes, num_edges, width, count = _HEADER.unpack_from(
        bytes(view[:_HEADER.size])
    )
    where = path or "<buffer>"
    if magic != MAGIC:
        raise ContainerFormatError(
            f"{where}: bad magic {magic!r} (expected {MAGIC!r}); not a graph container"
        )
    if version != FORMAT_VERSION:
        raise ContainerFormatError(
            f"{where}: unsupported container version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if width not in _WIDTH_TYPECODES:
        raise ContainerFormatError(f"{where}: invalid index width {width}")
    table_end = _HEADER.size + _SECTION.size * count
    if total < table_end:
        raise ContainerFormatError(f"{where}: truncated section table")
    sections: List[SectionInfo] = []
    for position in range(count):
        tag, offset, length, crc = _SECTION.unpack_from(
            bytes(view[_HEADER.size + position * _SECTION.size:
                       _HEADER.size + (position + 1) * _SECTION.size])
        )
        if offset < table_end or offset + length > total:
            raise ContainerFormatError(
                f"{where}: section {tag!r} [{offset}, {offset + length}) lies "
                f"outside the {total}-byte file"
            )
        sections.append(SectionInfo(tag.decode("ascii"), offset, length, crc))
    info = ContainerInfo(
        path=path,
        version=version,
        flags=flags,
        num_nodes=num_nodes,
        num_edges=num_edges,
        index_width=width,
        file_bytes=total,
        sections=tuple(sections),
    )
    if info.has_csr:
        expected = 2 * num_edges * width
        indices = info.section(TAG_INDICES)
        if indices.length != expected:
            raise ContainerFormatError(
                f"{where}: INDX section is {indices.length} bytes, header promises "
                f"{expected} ({2 * num_edges} entries x {width} bytes)"
            )
        info.section(TAG_INDPTR)
        if info.has_labels:
            info.section(TAG_LABELS)
    return info


def verify_sections(view, info: ContainerInfo) -> None:
    """CRC-check every section payload against the table; raise on mismatch."""
    for entry in info.sections:
        actual = zlib.crc32(view[entry.offset:entry.offset + entry.length])
        if actual != entry.crc32:
            raise ContainerFormatError(
                f"{info.path or '<buffer>'}: section {entry.tag!r} checksum "
                f"mismatch (stored {entry.crc32:#010x}, computed {actual:#010x}); "
                f"the container is corrupted"
            )


def read_container_info(path: PathLike, verify: bool = False) -> ContainerInfo:
    """Read and validate a container's header + section table from disk.

    With ``verify=True`` every section payload is also checksummed.  This
    is the cheap metadata path behind the CLI ``inspect`` subcommand;
    use :func:`repro.storage.load` to get a usable graph.
    """
    file_path = Path(path)
    try:
        data = file_path.read_bytes()
    except OSError as error:
        raise ContainerFormatError(f"{file_path}: cannot read container: {error}") from None
    view = memoryview(data)
    info = _parse_container(view, str(file_path))
    if verify:
        verify_sections(view, info)
    return info


def section_bytes(view, info: ContainerInfo, tag: bytes) -> bytes:
    """Copy one section payload out of a container image."""
    entry = info.section(tag)
    return bytes(view[entry.offset:entry.offset + entry.length])


def typecode_for_width(width: int) -> str:
    """Array/memoryview typecode of the fixed-width INDX entries."""
    return _WIDTH_TYPECODES[width]
