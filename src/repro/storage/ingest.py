"""Sharded parallel edge-list ingest: byte-range shards, forked parsers.

Text parsing is the last fully serial stage of getting a graph into
memory — on multi-million-edge inputs it dominates startup.  This module
splits an edge-list file into byte-range shards *aligned on line
boundaries*, parses the shards in parallel on the existing executor
layer (:class:`~repro.engine.execution.ProcessShardExecutor`, fork-based
so workers inherit nothing but the file path), and merges the partial
edge arrays back **in shard order**, so the resulting
:class:`~repro.graphs.graph.Graph` is *identical* to the serial parse:
same node insertion order (and therefore the same downstream dense ids),
same edge set, same duplicate/self-loop handling.

Shard ownership protocol
------------------------
A shard covers the half-open byte range ``[start, stop)`` and owns every
line that *starts* inside it: a worker whose range begins mid-line skips
forward to the next line boundary (that partial line belongs to the
previous shard), and a worker whose last line extends past ``stop``
reads through to its newline.  Concatenating the shard outputs in range
order therefore reproduces the file's line sequence exactly — the same
trick :func:`~repro.engine.execution.shard_bounds` plays for id ranges,
lifted to byte offsets.

Tokenization is shared with the serial reader
(:func:`repro.graphs.io.parse_edge_line`), so comment lines, CRLF, the
UTF-8 BOM (shard 0 strips it), SNAP-style trailing columns, self-loop
dropping, and int-versus-string label parsing cannot drift between the
two paths.  Duplicate edges are collapsed at the merge (``Graph.add_edge``
is idempotent), exactly as in the serial parse.

The serial fallback engages automatically when ``fork`` is unavailable,
``workers <= 1``, or the file is too small to amortize a pool.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.exceptions import GraphFormatError
from repro.engine.execution import (
    ProcessShardExecutor,
    process_execution_available,
    worker_context,
)
from repro.graphs.graph import Graph
from repro.graphs.io import parse_edge_line

__all__ = [
    "DEFAULT_MIN_SHARD_BYTES",
    "byte_shards",
    "parse_shard_worker",
    "sharded_read_edge_list",
]

PathLike = Union[str, Path]

#: Files smaller than one shard of this size are parsed serially — the
#: fork + result-pickling overhead would exceed the parsing work.
DEFAULT_MIN_SHARD_BYTES = 1 << 20

_BOM = b"\xef\xbb\xbf"


def byte_shards(total_bytes: int, workers: int, min_shard_bytes: int) -> List[Tuple[int, int]]:
    """Split ``[0, total_bytes)`` into at most ``workers`` contiguous ranges.

    Ranges are clamped so none is smaller than ``min_shard_bytes`` (the
    last may be larger); the actual line alignment happens inside the
    workers via the ownership protocol, so the split points can land
    anywhere.
    """
    if total_bytes <= 0:
        return []
    if min_shard_bytes > 0:
        workers = max(1, min(workers, total_bytes // min_shard_bytes))
    workers = max(1, workers)
    bounds: List[Tuple[int, int]] = []
    for i in range(workers):
        start = i * total_bytes // workers
        stop = (i + 1) * total_bytes // workers
        if stop > start:
            bounds.append((start, stop))
    return bounds


def parse_shard_worker(payload: Tuple[int, int]) -> List[Tuple[object, object]]:
    """Executor worker: parse the lines owned by one byte range.

    The worker context is the file path (a string — forked workers
    inherit it; serial execution reads it from the registry).  Returns
    the shard's edges in file order; malformed lines raise
    :class:`~repro.exceptions.GraphFormatError` with the line's byte
    offset (absolute line numbers would need a serial pre-scan, which is
    exactly what sharding avoids).
    """
    start, stop = payload
    path = worker_context()
    edges: List[Tuple[object, object]] = []
    position = 0

    def location() -> str:
        # Formatted only on a malformed line — never on the hot path.
        return f"{path}@byte {position}"

    with open(path, "rb") as handle:
        if start > 0:
            handle.seek(start - 1)
            # Unless the shard starts exactly at a line boundary, the
            # partial first line belongs to the previous shard.
            if handle.read(1) != b"\n":
                handle.readline()
        while True:
            position = handle.tell()
            if position >= stop:
                break
            raw = handle.readline()
            if not raw:
                break
            if position == 0 and raw.startswith(_BOM):
                raw = raw[len(_BOM):]
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise GraphFormatError(
                    f"{path}@byte {position}: undecodable line: {error}"
                ) from None
            # The serial reader runs in universal-newlines mode, where a
            # lone ``\r`` also terminates a line; ``readline`` only split
            # on ``\n``, so split the remainder here to stay identical
            # (for ``\r\n`` files the second piece is empty and skipped).
            for piece in text.split("\r"):
                edge = parse_edge_line(piece, location)
                if edge is not None:
                    edges.append(edge)
    return edges


def sharded_read_edge_list(
    path: PathLike,
    workers: int,
    min_shard_bytes: int = DEFAULT_MIN_SHARD_BYTES,
) -> Graph:
    """Parse an edge-list file over ``workers`` forked shard parsers.

    Falls back to the serial reader when the platform cannot fork or the
    file yields fewer than two shards at ``min_shard_bytes`` granularity.
    The returned graph is identical to ``read_edge_list(path)`` — shard
    outputs merge in file order, so node insertion order (and every
    downstream id assignment) matches the serial parse exactly.
    """
    file_path = Path(path)
    try:
        total_bytes = file_path.stat().st_size
    except OSError as error:
        raise GraphFormatError(f"{file_path}: cannot stat edge list: {error}") from None
    bounds = byte_shards(total_bytes, workers, min_shard_bytes)
    if len(bounds) < 2 or not process_execution_available():
        from repro.graphs.io import read_edge_list

        return read_edge_list(file_path)
    graph = Graph()
    with ProcessShardExecutor(len(bounds), context=str(file_path)) as executor:
        for shard_edges in executor.map_shards(parse_shard_worker, bounds):
            for u, v in shard_edges:
                graph.add_edge(u, v)
    return graph
