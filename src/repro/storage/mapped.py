"""Memory-mapped, zero-copy CSR views over binary graph containers.

:class:`MappedCSR` opens a container written by
:mod:`repro.storage.format` and exposes the same read-only interface as
:class:`~repro.graphs.dense.CSRAdjacency` — ``indptr`` / ``indices``
flat arrays, ``degree`` / ``neighbors_of`` / ``has_edge`` / ``edge_ids``
and a ``NodeIndex``-compatible ``index`` — without materializing any
per-node Python structure for the heavy ``2m``-sized part: ``indices``
is a ``memoryview`` cast directly over the memory map, so the neighbor
data stays in the page cache, loads in near-constant time, and is
shared between processes mapping the same file (a forked shingle pool
inherits the mapping for free).  Only the small ``O(n)`` parts — the
varint-decoded ``indptr`` and the label index — are materialized.

:class:`StoredGraph` wraps a mapped view as a full
:class:`~repro.engine.hooks.GraphResources` implementation: ``csr()``
returns the zero-copy view, ``dense()`` hands out a
:class:`~repro.graphs.dense.LazyDenseAdjacency` overlay that thaws
per-node neighbor sets from the map on first access (never the eager
O(m) thaw), and ``graph()`` lazily materializes the label-keyed
:class:`~repro.graphs.graph.Graph`.  Because nodes materialize in id
order (the original insertion order) and substrate construction is
deterministic in graph content, a run on a stored graph is
**bit-identical** to the same run on the text-parsed original — pinned
by the storage test suite for SLUGGER and the baselines.
"""

from __future__ import annotations

import mmap
import sys
from array import array
from bisect import bisect_left
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.exceptions import ContainerFormatError
from repro.graphs.dense import DenseAdjacency, LazyDenseAdjacency
from repro.graphs.graph import Graph
from repro.graphs.index import NodeIndex
from repro.graphs.staleness import ensure_fresh_views
from repro.engine.hooks import GraphResources
from repro.storage import format as container_format
from repro.storage.format import (
    TAG_INDICES,
    TAG_INDPTR,
    TAG_LABELS,
    ContainerInfo,
    decode_indptr,
    decode_labels,
    typecode_for_width,
    verify_sections,
)

__all__ = ["MappedCSR", "StoredGraph", "load"]

PathLike = Union[str, Path]


class MappedCSR:
    """Read-only CSR adjacency served straight from a memory-mapped file.

    Satisfies the :class:`~repro.graphs.dense.CSRAdjacency` view
    interface (``indptr``/``indices``/``index``/``num_nodes``/
    ``num_edges`` plus the query methods), so it can be injected
    anywhere a frozen CSR is consumed: ``SluggerState(csr=...)``, the
    sharded shingle workers' ``(csr, labels)`` context, and the
    baselines' frozen-adjacency path.  ``indices`` is a ``memoryview``
    cast over the map — slicing it (``indices[lo:hi]``) is zero-copy and
    iterating a slice yields plain ints, exactly like the ``array``
    slices of the in-memory view.

    The object owns its file handle and map; use it as a context manager
    or call :meth:`close`.  All query methods assume the object is open.
    """

    __slots__ = ("info", "index", "indptr", "indices", "num_nodes", "num_edges",
                 "path", "_file", "_mmap", "_closed")

    def __init__(self, path: PathLike, verify: bool = True) -> None:
        self.path = str(path)
        self._file = open(self.path, "rb")
        self._closed = False
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as error:
            self._file.close()
            self._closed = True
            raise ContainerFormatError(
                f"{self.path}: cannot map container: {error}"
            ) from None
        try:
            # All fallible parsing happens against short-lived views that
            # are released before any cleanup can try to close the map —
            # only the final zero-copy ``indices`` cast (which cannot
            # fail past validation) holds an export across the lifetime.
            view = memoryview(self._mmap)
            try:
                info: ContainerInfo = container_format._parse_container(view, self.path)
                if not info.has_csr:
                    raise ContainerFormatError(
                        f"{self.path}: container holds no CSR sections (a "
                        f"summary checkpoint artifact); load it through "
                        f"repro.storage.summary_store instead"
                    )
                if verify:
                    verify_sections(view, info)
                indptr_entry = info.section(TAG_INDPTR)
                indptr_bytes = bytes(
                    view[indptr_entry.offset:indptr_entry.offset + indptr_entry.length]
                )
                labels_bytes = None
                if info.has_labels:
                    labels_entry = info.section(TAG_LABELS)
                    labels_bytes = bytes(
                        view[labels_entry.offset:labels_entry.offset + labels_entry.length]
                    )
            finally:
                view.release()
            self.info = info
            self.num_nodes = info.num_nodes
            self.num_edges = info.num_edges
            self.indptr = decode_indptr(indptr_bytes, info.num_nodes, info.num_edges)
            if labels_bytes is not None:
                labels = decode_labels(labels_bytes, info.num_nodes)
                self.index = NodeIndex(labels)
                if len(self.index) != info.num_nodes:
                    raise ContainerFormatError(
                        f"{self.path}: LBLS section holds duplicate labels "
                        f"({info.num_nodes} nodes, {len(self.index)} distinct labels)"
                    )
            else:
                self.index = NodeIndex(range(info.num_nodes))
            indices_entry = info.section(TAG_INDICES)
            typecode = typecode_for_width(info.index_width)
            if sys.byteorder == "little":
                # The zero-copy path: the cast view reads the map in place.
                self.indices = memoryview(self._mmap)[
                    indices_entry.offset:indices_entry.offset + indices_entry.length
                ].cast(typecode)
            else:  # pragma: no cover - big-endian hosts copy + swap
                swapped = array(
                    typecode,
                    self._mmap[indices_entry.offset:
                               indices_entry.offset + indices_entry.length],
                )
                swapped.byteswap()
                self.indices = swapped
        except BaseException:
            self._release()
            raise

    # ------------------------------------------------------------------
    # CSRAdjacency view interface
    # ------------------------------------------------------------------
    def degree(self, u: int) -> int:
        """Degree of id ``u``."""
        return self.indptr[u + 1] - self.indptr[u]

    def neighbors_of(self, u: int):
        """The sorted neighbor run of ``u`` (a zero-copy slice of the map)."""
        return self.indices[self.indptr[u]:self.indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Binary-search membership test in ``u``'s sorted neighbor run."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        position = bisect_left(self.indices, v, lo, hi)
        return position < hi and self.indices[position] == v

    def edge_ids(self) -> Iterator[Tuple[int, int]]:
        """Iterate every edge once as an ``(u, v)`` id pair with ``u < v``."""
        indptr, indices = self.indptr, self.indices
        for u in range(self.num_nodes):
            for position in range(indptr[u], indptr[u + 1]):
                v = indices[position]
                if u < v:
                    yield (u, v)

    def approx_bytes(self) -> int:
        """Resident heap bytes: the decoded indptr only — indices stay mapped."""
        return self.indptr.itemsize * len(self.indptr)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the map."""
        return self._closed

    def close(self) -> None:
        """Release the memory map and file handle (idempotent).

        After closing, the ``indices`` view is invalid; consumers holding
        the object across a run must keep it open for the run's duration.
        """
        if not self._closed:
            self._release()

    def _release(self) -> None:
        self._closed = True
        indices = getattr(self, "indices", None)
        if isinstance(indices, memoryview):
            indices.release()
        self.indices = array("q")
        self._mmap.close()
        self._file.close()

    def __enter__(self) -> "MappedCSR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"MappedCSR(path={self.path!r}, num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges}, {state})")


class StoredGraph(GraphResources):
    """A loaded container: zero-copy CSR plus lazily thawed views.

    Implements the :class:`~repro.engine.hooks.GraphResources` protocol,
    so it can be passed straight to ``Summarizer.summarize(...,
    resources=stored)`` or ``engine.run(..., resources=stored)`` — the
    run then consumes the mapped CSR directly and thaws the mutable
    dense substrate from the map instead of re-deriving everything from
    a label-keyed graph.  ``graph()`` materializes the
    :class:`~repro.graphs.graph.Graph` (nodes in id order, edges in
    canonical ascending order); all three views are cached.
    """

    __slots__ = ("_csr", "_dense", "_graph", "_view", "materializations")

    def __init__(self, csr: MappedCSR) -> None:
        self._csr = csr
        self._dense: Optional[DenseAdjacency] = None
        self._graph: Optional[Graph] = None
        self._view: Optional[Graph] = None
        #: How many times :meth:`graph` actually built the label-keyed
        #: Graph (0 or 1; cached afterwards).  The query layer asserts
        #: this stays 0 when serving straight off the substrate.
        self.materializations = 0

    @property
    def info(self) -> ContainerInfo:
        """Header + section metadata of the backing container."""
        return self._csr.info

    @property
    def path(self) -> str:
        """Filesystem path of the backing container."""
        return self._csr.path

    # -- GraphResources protocol ---------------------------------------
    def csr(self) -> MappedCSR:
        """The zero-copy mapped CSR view."""
        return self._csr

    def dense(self) -> DenseAdjacency:
        """The mutable dense substrate, thawed from the map on demand.

        Returns a :class:`~repro.graphs.dense.LazyDenseAdjacency` overlay
        over the mapped CSR: per-node neighbor sets materialize on first
        access instead of paying the eager O(m) thaw up front, so
        read-dominated consumers (pruning scans, analytics) touch only
        the pages they actually read and summarization jobs off
        ``--cache-dir`` start without a thaw pause.  Contents — and
        therefore summarizer output — are bit-identical to the eager
        ``DenseAdjacency.from_csr`` thaw.
        """
        if self._dense is None:
            self._dense = LazyDenseAdjacency(self._csr)
        return self._dense

    def seed(
        self,
        dense: Optional[DenseAdjacency] = None,
        graph: Optional[Graph] = None,
    ) -> "StoredGraph":
        """Seed the lazily-derived views with already-built equivalents.

        Used by cache *miss* paths that just packed this container from
        an in-memory graph: the dense substrate and the label-keyed
        graph already exist, so deriving them again from the map would
        double the cold-load work.  Seeds must be content-equivalent to
        what the thaw/materialization would produce (validated cheaply
        on edge counts); returns ``self`` for chaining.
        """
        ensure_fresh_views(
            self._csr.num_edges,
            error=ContainerFormatError,
            owner="the container",
            dense=dense,
            graph=graph,
        )
        if dense is not None:
            self._dense = dense
        if graph is not None:
            self._graph = graph
        return self

    # -- materialization ------------------------------------------------
    def graph(self) -> Graph:
        """The label-keyed :class:`Graph`, materialized on first use.

        Nodes are added in id order — the original insertion order the
        container preserved — so every downstream id assignment
        (``NodeIndex.from_graph``, leaf supernode numbering) matches the
        source graph's exactly.
        """
        if self._graph is None:
            self.materializations += 1
            csr = self._csr
            labels: List = csr.index.labels()
            graph = Graph(nodes=labels)
            for u, v in csr.edge_ids():
                graph.add_edge(labels[u], labels[v])
            self._graph = graph
        return self._graph

    def view(self) -> Graph:
        """A read-only label-keyed facade over the mapped substrate.

        Unlike :meth:`graph` this materializes nothing: the returned
        :class:`~repro.graphs.view.CSRGraphView` answers ``nodes()`` /
        ``edges()`` / ``degree()`` / ``has_edge()`` straight off the
        flat arrays and thaws individual label rows only when a consumer
        asks for a neighbor set.  This is what the query serving path
        and the cache hit path hand out.
        """
        if self._view is None:
            from repro.graphs.view import CSRGraphView

            self._view = CSRGraphView(self._csr, self._csr.index)
        return self._view

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close the backing map (thawed/materialized views stay usable)."""
        self._csr.close()

    def __enter__(self) -> "StoredGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"StoredGraph(path={self.path!r}, num_nodes={self._csr.num_nodes}, "
                f"num_edges={self._csr.num_edges})")


def load(path: PathLike, verify: bool = True) -> StoredGraph:
    """Open a container as a :class:`StoredGraph` (mmap; near-instant).

    ``verify=True`` (default) checksums every section before use; a
    corrupted or truncated container raises
    :class:`~repro.exceptions.ContainerFormatError` instead of producing
    a garbage graph.
    """
    return StoredGraph(MappedCSR(path, verify=verify))
