"""Summary persistence: ``SUMM`` sections, result cache, and checkpoints.

This module is the persistence layer for the *expensive* artifact — the
summary itself.  Three pieces:

* **Section codecs** — :class:`HierarchicalSummary` / :class:`FlatSummary`
  serialize to a checksummed ``SUMM`` section family inside the ordinary
  ``SLGRPH`` container, alongside (or, for checkpoints, instead of) the
  CSR sections:

  ======  ==========================================================
  tag     payload
  ======  ==========================================================
  SMET    summary metadata: kind, method, seed, graph/config digests
  SHIE    hierarchy: leaf count + internal ``(id, children)`` records
  SPED    positive superedges (sorted canonical id pairs)
  SNED    negative superedges (sorted canonical id pairs)
  SGRP    flat grouping: group ids + ``group_of`` entries, dict order
  SSED    flat superedges (sorted canonical group-id pairs)
  SCRP    flat ``C+`` corrections (sorted canonical node-id pairs)
  SCRN    flat ``C-`` corrections (sorted canonical node-id pairs)
  CKPT    resumable-job state: iteration, RNG stream position, history
  ======  ==========================================================

  Every integer is varint-encoded; pair lists are sorted and
  delta-encoded on the first coordinate, so the encoding is canonical:
  equal summaries yield byte-identical sections, which is what makes
  the cache key a true content address.

  Order preservation is the subtle part.  ``SHIE`` keeps each internal
  supernode's children list **verbatim** and emits internal records in
  ascending id order; :meth:`Hierarchy.from_parts` then reproduces the
  original insertion order of every internal mapping, so a decoded
  hierarchy iterates (``roots()`` etc.) exactly like the one that was
  encoded — the property that keeps resumed runs bit-identical.
  ``SGRP`` likewise records both dict orders of a flat summary (the
  group-id order and the ``group_of`` entry order) because the serving
  layer derives its node numbering from ``group_of`` insertion order.

* **Containers** — :func:`encode_summary_container` appends the family
  to a full CSR container (``FLAG_SUMMARY``): one self-contained file
  that serves queries off the mmap *and* yields the summary with zero
  recompute.  :func:`encode_checkpoint_container` writes a CSR-less
  variant (``FLAG_SUMMARY | FLAG_NO_CSR``) holding the summary snapshot
  plus a ``CKPT`` section; leaves are rebuilt from the live graph at
  restore time, with the ``SMET`` graph digest guarding mismatches.

* **SummaryCache** — a flat content-addressed directory like
  :class:`~repro.storage.cache.GraphCache`, keyed by
  ``sha256(graph digest, method, seed, config digest)``, with
  LRU-by-mtime eviction under an optional size budget.  Checkpoints
  live next to their summary as ``<key>.ckpt.slg`` and are dropped
  once the finished summary lands.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ContainerFormatError, SummaryInvariantError
from repro.graphs.graph import canonical_edge
from repro.model.flat import FlatSummary
from repro.model.hierarchy import Hierarchy
from repro.model.summary import HierarchicalSummary
from repro.storage.format import (
    CONTAINER_SUFFIX,
    FLAG_NO_CSR,
    FLAG_SUMMARY,
    ContainerInfo,
    SectionInfo,
    _zigzag_decode,
    _zigzag_encode,
    decode_varint,
    encode_container,
    encode_image,
    encode_varint,
    index_width_for,
    read_container_info,
    write_container_image,
)
from repro.storage.mapped import StoredGraph, load as load_stored_graph

__all__ = [
    "CHECKPOINT_SUFFIX",
    "SummaryCache",
    "SummaryCheckpoint",
    "SummaryMeta",
    "StoredSummary",
    "config_fingerprint",
    "decode_summary_sections",
    "encode_checkpoint_container",
    "encode_summary_container",
    "encode_summary_sections",
    "load_checkpoint",
    "load_summary",
    "read_summary_meta",
    "summary_fingerprint",
    "summary_key",
]

PathLike = Union[str, Path]

SUMMARY_FORMAT_VERSION = 1
CHECKPOINT_FORMAT_VERSION = 1

TAG_SUMMARY_META = b"SMET"
TAG_SUMMARY_HIERARCHY = b"SHIE"
TAG_SUMMARY_P_EDGES = b"SPED"
TAG_SUMMARY_N_EDGES = b"SNED"
TAG_SUMMARY_GROUPS = b"SGRP"
TAG_SUMMARY_SUPEREDGES = b"SSED"
TAG_SUMMARY_CORR_PLUS = b"SCRP"
TAG_SUMMARY_CORR_MINUS = b"SCRN"
TAG_CHECKPOINT = b"CKPT"

SUMMARY_SECTION_TAGS = (
    TAG_SUMMARY_META,
    TAG_SUMMARY_HIERARCHY,
    TAG_SUMMARY_P_EDGES,
    TAG_SUMMARY_N_EDGES,
    TAG_SUMMARY_GROUPS,
    TAG_SUMMARY_SUPEREDGES,
    TAG_SUMMARY_CORR_PLUS,
    TAG_SUMMARY_CORR_MINUS,
    TAG_CHECKPOINT,
)

_KIND_HIERARCHICAL = 0
_KIND_FLAT = 1

CHECKPOINT_SUFFIX = ".ckpt" + CONTAINER_SUFFIX

_DOUBLE = struct.Struct("<d")
_DIGEST_BYTES = 32


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def config_fingerprint(method: str, options: Optional[Dict[str, Any]] = None) -> Tuple[str, str]:
    """``(digest, canonical_json)`` of a summarizer configuration.

    For the ``slugger`` method the options are resolved through
    :class:`~repro.core.config.SluggerConfig` first, so ``{}`` and an
    explicit ``{"iterations": 20}`` (the default) produce the *same*
    fingerprint — equal effective configs share one cache slot.  The
    seed is keyed separately and never part of the config digest.
    """
    payload: Dict[str, Any] = dict(options or {})
    payload.pop("seed", None)
    if method == "slugger":
        from dataclasses import asdict

        from repro.core.config import SluggerConfig

        payload = asdict(SluggerConfig(**payload))
        payload.pop("seed", None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest, canonical


def summary_key(graph_digest: str, method: str, seed: Optional[int],
                config_digest: str) -> str:
    """The content address of one summarization result.

    Equal ``(graph digest, method, seed, config digest)`` tuples map to
    the same key — and, because every summarizer is deterministic for a
    fixed seed, to byte-identical summary containers.
    """
    blob = json.dumps(
        [graph_digest, method, seed, config_digest],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Metadata
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SummaryMeta:
    """The ``SMET`` payload: what was summarized, how, and under what key."""

    kind: str
    method: str
    seed: Optional[int]
    graph_digest: str
    config_digest: str
    config_json: str
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return summary_key(self.graph_digest, self.method, self.seed, self.config_digest)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "method": self.method,
            "seed": self.seed,
            "graph_digest": self.graph_digest,
            "config_digest": self.config_digest,
            "config": json.loads(self.config_json) if self.config_json else {},
            "key": self.key,
        }


def _encode_blob(data: bytes, out: bytearray) -> None:
    encode_varint(len(data), out)
    out += data


def _read_blob(data: bytes, position: int) -> Tuple[bytes, int]:
    length, position = decode_varint(data, position)
    end = position + length
    if end > len(data):
        raise ContainerFormatError("truncated byte string in summary section")
    return data[position:end], end


def _read_digest(data: bytes, position: int) -> Tuple[str, int]:
    end = position + _DIGEST_BYTES
    if end > len(data):
        raise ContainerFormatError("truncated digest in summary metadata")
    return data[position:end].hex(), end


def _encode_meta(meta: SummaryMeta) -> bytes:
    out = bytearray()
    encode_varint(SUMMARY_FORMAT_VERSION, out)
    out.append(_KIND_HIERARCHICAL if meta.kind == "hierarchical" else _KIND_FLAT)
    _encode_blob(meta.method.encode("utf-8"), out)
    if meta.seed is None:
        out.append(0)
    else:
        out.append(1)
        encode_varint(_zigzag_encode(meta.seed), out)
    out += bytes.fromhex(meta.graph_digest or "0" * 64)
    out += bytes.fromhex(meta.config_digest or "0" * 64)
    _encode_blob(meta.config_json.encode("utf-8"), out)
    extra = json.dumps(meta.extra, sort_keys=True, separators=(",", ":"))
    _encode_blob(extra.encode("utf-8"), out)
    return bytes(out)


def _decode_meta(data: bytes) -> SummaryMeta:
    version, pos = decode_varint(data, 0)
    if version != SUMMARY_FORMAT_VERSION:
        raise ContainerFormatError(
            f"unsupported summary section version {version} "
            f"(this build reads version {SUMMARY_FORMAT_VERSION})"
        )
    if pos >= len(data):
        raise ContainerFormatError("truncated summary metadata section")
    kind_byte = data[pos]
    pos += 1
    if kind_byte not in (_KIND_HIERARCHICAL, _KIND_FLAT):
        raise ContainerFormatError(f"unknown summary kind byte {kind_byte}")
    method_bytes, pos = _read_blob(data, pos)
    if pos >= len(data):
        raise ContainerFormatError("truncated summary metadata section")
    seed_flag = data[pos]
    pos += 1
    seed: Optional[int] = None
    if seed_flag:
        raw, pos = decode_varint(data, pos)
        seed = _zigzag_decode(raw)
    graph_digest, pos = _read_digest(data, pos)
    config_digest, pos = _read_digest(data, pos)
    config_bytes, pos = _read_blob(data, pos)
    extra_bytes, pos = _read_blob(data, pos)
    if pos != len(data):
        raise ContainerFormatError("trailing bytes after summary metadata")
    try:
        extra = json.loads(extra_bytes.decode("utf-8")) if extra_bytes else {}
    except ValueError as error:
        raise ContainerFormatError(f"corrupt summary metadata JSON: {error}") from None
    return SummaryMeta(
        kind="hierarchical" if kind_byte == _KIND_HIERARCHICAL else "flat",
        method=method_bytes.decode("utf-8"),
        seed=seed,
        graph_digest=graph_digest,
        config_digest=config_digest,
        config_json=config_bytes.decode("utf-8"),
        extra=extra,
    )


# ----------------------------------------------------------------------
# Pair-list codec (shared by SPED/SNED/SSED/SCRP/SCRN)
# ----------------------------------------------------------------------
def _encode_id_pairs(pairs: Iterable[Tuple[int, int]]) -> bytes:
    """Sorted canonical pairs, delta-varint first coordinate, raw second."""
    ordered = sorted(pairs)
    out = bytearray()
    encode_varint(len(ordered), out)
    previous = 0
    for a, b in ordered:
        encode_varint(a - previous, out)
        encode_varint(b, out)
        previous = a
    return bytes(out)


def _decode_id_pairs(data: bytes) -> List[Tuple[int, int]]:
    count, pos = decode_varint(data, 0)
    pairs: List[Tuple[int, int]] = []
    previous = 0
    for _ in range(count):
        delta, pos = decode_varint(data, pos)
        second, pos = decode_varint(data, pos)
        previous += delta
        pairs.append((previous, second))
    if pos != len(data):
        raise ContainerFormatError("trailing bytes after superedge pair list")
    return pairs


# ----------------------------------------------------------------------
# Hierarchical codec
# ----------------------------------------------------------------------
def _encode_hierarchy(hierarchy: Hierarchy) -> bytes:
    num_leaves = len(hierarchy.leaf_subnode_map())
    internal = [
        node for node in hierarchy.supernodes() if not hierarchy.is_leaf(node)
    ]
    internal.sort()
    out = bytearray()
    encode_varint(num_leaves, out)
    encode_varint(hierarchy._next_id, out)
    encode_varint(len(internal), out)
    previous = num_leaves
    for node_id in internal:
        encode_varint(node_id - previous, out)
        children = hierarchy.children(node_id)
        encode_varint(len(children), out)
        for child in children:
            encode_varint(child, out)
        previous = node_id
    return bytes(out)


def _decode_hierarchy(data: bytes, subnodes: Sequence) -> Hierarchy:
    num_leaves, pos = decode_varint(data, 0)
    next_id, pos = decode_varint(data, pos)
    num_internal, pos = decode_varint(data, pos)
    if num_leaves != len(subnodes):
        raise ContainerFormatError(
            f"summary hierarchy holds {num_leaves} leaves but the container "
            f"provides {len(subnodes)} node labels"
        )
    internal: List[Tuple[int, List[int]]] = []
    previous = num_leaves
    for _ in range(num_internal):
        delta, pos = decode_varint(data, pos)
        node_id = previous + delta
        child_count, pos = decode_varint(data, pos)
        children: List[int] = []
        for _ in range(child_count):
            child, pos = decode_varint(data, pos)
            children.append(child)
        internal.append((node_id, children))
        previous = node_id
    if pos != len(data):
        raise ContainerFormatError("trailing bytes after summary hierarchy")
    try:
        return Hierarchy.from_parts(subnodes, internal, next_id=next_id)
    except SummaryInvariantError as error:
        raise ContainerFormatError(f"corrupt summary hierarchy: {error}") from None


def _hierarchical_sections(summary: HierarchicalSummary) -> List[Tuple[bytes, bytes]]:
    return [
        (TAG_SUMMARY_HIERARCHY, _encode_hierarchy(summary.hierarchy)),
        (TAG_SUMMARY_P_EDGES, _encode_id_pairs(summary.p_edges())),
        (TAG_SUMMARY_N_EDGES, _encode_id_pairs(summary.n_edges())),
    ]


def _decode_hierarchical(payloads: Dict[bytes, bytes], subnodes: Sequence) -> HierarchicalSummary:
    hierarchy = _decode_hierarchy(payloads[TAG_SUMMARY_HIERARCHY], subnodes)
    summary = HierarchicalSummary(hierarchy)
    try:
        for a, b in _decode_id_pairs(payloads[TAG_SUMMARY_P_EDGES]):
            summary.add_p_edge(a, b)
        for a, b in _decode_id_pairs(payloads[TAG_SUMMARY_N_EDGES]):
            summary.add_n_edge(a, b)
    except (SummaryInvariantError, KeyError) as error:
        raise ContainerFormatError(f"corrupt summary superedges: {error}") from None
    return summary


# ----------------------------------------------------------------------
# Flat codec
# ----------------------------------------------------------------------
def _encode_flat(summary: FlatSummary, node_ids: Dict[Any, int]) -> List[Tuple[bytes, bytes]]:
    groups = bytearray()
    encode_varint(len(summary.groups), groups)
    for gid in summary.groups:
        encode_varint(gid, groups)
    encode_varint(len(summary.group_of), groups)
    for node, gid in summary.group_of.items():
        encode_varint(node_ids[node], groups)
        encode_varint(gid, groups)

    def correction_pairs(corrections):
        for u, v in corrections:
            iu, iv = node_ids[u], node_ids[v]
            yield (iu, iv) if iu <= iv else (iv, iu)

    return [
        (TAG_SUMMARY_GROUPS, bytes(groups)),
        (TAG_SUMMARY_SUPEREDGES, _encode_id_pairs(summary.superedges)),
        (TAG_SUMMARY_CORR_PLUS, _encode_id_pairs(correction_pairs(summary.corrections_plus))),
        (TAG_SUMMARY_CORR_MINUS, _encode_id_pairs(correction_pairs(summary.corrections_minus))),
    ]


def _decode_flat(payloads: Dict[bytes, bytes], labels: Sequence) -> FlatSummary:
    data = payloads[TAG_SUMMARY_GROUPS]
    num_groups, pos = decode_varint(data, 0)
    gid_order: List[int] = []
    for _ in range(num_groups):
        gid, pos = decode_varint(data, pos)
        gid_order.append(gid)
    num_entries, pos = decode_varint(data, pos)
    entries: List[Tuple[int, int]] = []
    for _ in range(num_entries):
        node_id, pos = decode_varint(data, pos)
        gid, pos = decode_varint(data, pos)
        entries.append((node_id, gid))
    if pos != len(data):
        raise ContainerFormatError("trailing bytes after flat summary grouping")

    summary = FlatSummary()
    members: Dict[int, List] = {gid: [] for gid in gid_order}
    num_labels = len(labels)
    for node_id, gid in entries:
        if node_id >= num_labels or gid not in members:
            raise ContainerFormatError(
                f"flat summary entry ({node_id}, {gid}) references an unknown "
                f"node or group"
            )
        node = labels[node_id]
        summary.group_of[node] = gid
        members[gid].append(node)
    for gid in gid_order:
        summary.groups[gid] = frozenset(members[gid])
    summary.superedges = set(_decode_id_pairs(payloads[TAG_SUMMARY_SUPEREDGES]))
    for tag, target in (
        (TAG_SUMMARY_CORR_PLUS, summary.corrections_plus),
        (TAG_SUMMARY_CORR_MINUS, summary.corrections_minus),
    ):
        for u, v in _decode_id_pairs(payloads[tag]):
            if u >= num_labels or v >= num_labels:
                raise ContainerFormatError(
                    f"flat summary correction ({u}, {v}) references an unknown node"
                )
            target.add(canonical_edge(labels[u], labels[v]))
    return summary


# ----------------------------------------------------------------------
# Section assembly / disassembly
# ----------------------------------------------------------------------
def encode_summary_sections(summary, meta: SummaryMeta,
                            labels: Optional[Sequence] = None) -> List[Tuple[bytes, bytes]]:
    """The ``SUMM`` section family for ``summary`` (``SMET`` first).

    ``labels`` supplies the container's node order for flat summaries,
    whose members are label-keyed; hierarchical summaries are id-native
    and ignore it.
    """
    sections = [(TAG_SUMMARY_META, _encode_meta(meta))]
    if isinstance(summary, HierarchicalSummary):
        sections.extend(_hierarchical_sections(summary))
    elif isinstance(summary, FlatSummary):
        if labels is None:
            raise SummaryInvariantError(
                "flat summaries serialize against the container's node labels"
            )
        node_ids = {label: position for position, label in enumerate(labels)}
        sections.extend(_encode_flat(summary, node_ids))
    else:
        raise SummaryInvariantError(
            f"cannot serialize summary of type {type(summary).__name__}"
        )
    return sections


def decode_summary_sections(payloads: Dict[bytes, bytes], labels: Sequence):
    """``(meta, summary)`` from a tag → payload mapping.

    ``labels`` is the container's node label list; hierarchical leaves
    and flat members are rebuilt against it.
    """
    if TAG_SUMMARY_META not in payloads:
        raise ContainerFormatError("summary container is missing its SMET section")
    meta = _decode_meta(payloads[TAG_SUMMARY_META])
    required = (
        (TAG_SUMMARY_HIERARCHY, TAG_SUMMARY_P_EDGES, TAG_SUMMARY_N_EDGES)
        if meta.kind == "hierarchical"
        else (TAG_SUMMARY_GROUPS, TAG_SUMMARY_SUPEREDGES,
              TAG_SUMMARY_CORR_PLUS, TAG_SUMMARY_CORR_MINUS)
    )
    for tag in required:
        if tag not in payloads:
            raise ContainerFormatError(
                f"summary container is missing its {tag.decode('ascii')} section"
            )
    if meta.kind == "hierarchical":
        summary = _decode_hierarchical(payloads, labels)
    else:
        summary = _decode_flat(payloads, labels)
    return meta, summary


def summary_fingerprint(summary, labels: Optional[Sequence] = None) -> str:
    """SHA-256 over the canonical section encoding of ``summary``.

    The bit-identity yardstick used by the resume and warm-start tests:
    two summaries fingerprint equal iff their canonical serializations
    are byte-identical.
    """
    placeholder = SummaryMeta(
        kind="hierarchical" if isinstance(summary, HierarchicalSummary) else "flat",
        method="", seed=None, graph_digest="0" * 64, config_digest="0" * 64,
        config_json="",
    )
    digest = hashlib.sha256()
    for tag, payload in encode_summary_sections(summary, placeholder, labels)[1:]:
        digest.update(tag)
        digest.update(payload)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Containers
# ----------------------------------------------------------------------
def encode_summary_container(csr, summary, meta: SummaryMeta) -> bytes:
    """One self-contained container: CSR sections + the ``SUMM`` family."""
    sections = encode_summary_sections(summary, meta, csr.index.labels())
    return encode_container(csr, extra_sections=sections, extra_flags=FLAG_SUMMARY)


def _encode_rng_state(rng_state) -> bytes:
    version, internal, gauss = rng_state
    out = bytearray()
    encode_varint(version, out)
    encode_varint(len(internal), out)
    for word in internal:
        encode_varint(word, out)
    if gauss is None:
        out.append(0)
    else:
        out.append(1)
        out += _DOUBLE.pack(gauss)
    return bytes(out)


def _decode_rng_state(data: bytes, pos: int):
    version, pos = decode_varint(data, pos)
    count, pos = decode_varint(data, pos)
    internal: List[int] = []
    for _ in range(count):
        word, pos = decode_varint(data, pos)
        internal.append(word)
    if pos >= len(data):
        raise ContainerFormatError("truncated RNG state in checkpoint section")
    flag = data[pos]
    pos += 1
    gauss = None
    if flag:
        end = pos + _DOUBLE.size
        if end > len(data):
            raise ContainerFormatError("truncated RNG state in checkpoint section")
        gauss = _DOUBLE.unpack_from(data, pos)[0]
        pos = end
    return (version, tuple(internal), gauss), pos


def _encode_checkpoint_section(iteration: int, rng_state, history: Sequence[Dict]) -> bytes:
    out = bytearray()
    encode_varint(CHECKPOINT_FORMAT_VERSION, out)
    encode_varint(iteration, out)
    out += _encode_rng_state(rng_state)
    blob = json.dumps(list(history), sort_keys=True, separators=(",", ":"))
    _encode_blob(blob.encode("utf-8"), out)
    return bytes(out)


def _decode_checkpoint_section(data: bytes):
    version, pos = decode_varint(data, 0)
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ContainerFormatError(
            f"unsupported checkpoint section version {version} "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    iteration, pos = decode_varint(data, pos)
    rng_state, pos = _decode_rng_state(data, pos)
    blob, pos = _read_blob(data, pos)
    if pos != len(data):
        raise ContainerFormatError("trailing bytes after checkpoint section")
    try:
        history = json.loads(blob.decode("utf-8")) if blob else []
    except ValueError as error:
        raise ContainerFormatError(f"corrupt checkpoint history JSON: {error}") from None
    return iteration, rng_state, history


def encode_checkpoint_container(summary: HierarchicalSummary, meta: SummaryMeta,
                                iteration: int, rng_state,
                                history: Sequence[Dict]) -> bytes:
    """A CSR-less checkpoint container (``FLAG_SUMMARY | FLAG_NO_CSR``).

    Holds the iteration-boundary summary snapshot plus the RNG stream
    position and history so far.  Node labels are *not* stored — leaves
    are rebuilt from the live graph at restore time, and the ``SMET``
    graph digest guards against restoring onto the wrong graph.
    """
    if not isinstance(summary, HierarchicalSummary):
        raise SummaryInvariantError("checkpoints snapshot hierarchical summaries only")
    sections = [(TAG_SUMMARY_META, _encode_meta(meta))]
    sections.extend(_hierarchical_sections(summary))
    sections.append(
        (TAG_CHECKPOINT, _encode_checkpoint_section(iteration, rng_state, history))
    )
    num_leaves = len(summary.hierarchy.leaf_subnode_map())
    return encode_image(
        FLAG_SUMMARY | FLAG_NO_CSR, num_leaves, 0,
        index_width_for(num_leaves), sections,
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _summary_payloads(path: PathLike, info: ContainerInfo) -> Dict[bytes, bytes]:
    """Read and CRC-check every ``SUMM``-family section of a container.

    Seeks straight to the section offsets, so the (potentially large)
    CSR payloads are never pulled off disk.
    """
    wanted: List[Tuple[bytes, SectionInfo]] = []
    for tag in SUMMARY_SECTION_TAGS:
        entry = info.maybe_section(tag)
        if entry is not None:
            wanted.append((tag, entry))
    payloads: Dict[bytes, bytes] = {}
    try:
        with open(path, "rb") as handle:
            for tag, entry in wanted:
                handle.seek(entry.offset)
                payload = handle.read(entry.length)
                if len(payload) != entry.length:
                    raise ContainerFormatError(
                        f"{path}: truncated {entry.tag} section"
                    )
                actual = zlib.crc32(payload)
                if actual != entry.crc32:
                    raise ContainerFormatError(
                        f"{path}: section {entry.tag!r} checksum mismatch "
                        f"(stored {entry.crc32:#010x}, computed {actual:#010x}); "
                        f"the container is corrupted"
                    )
                payloads[tag] = payload
    except OSError as error:
        raise ContainerFormatError(f"{path}: cannot read container: {error}") from None
    return payloads


class StoredSummary:
    """A summary container opened for serving.

    Bundles the mmap-backed :class:`StoredGraph` (queries run zero-copy
    off the CSR sections) with the decoded summary and its metadata.
    Close it when done; the summary and meta survive closing.
    """

    def __init__(self, path: PathLike, stored: Optional[StoredGraph],
                 meta: SummaryMeta, summary) -> None:
        self.path = str(path)
        self.stored = stored
        self.meta = meta
        self.summary = summary

    @property
    def info(self) -> Optional[ContainerInfo]:
        return self.stored.info if self.stored is not None else None

    def fingerprint(self) -> str:
        labels = None
        if self.stored is not None:
            labels = self.stored.csr().index.labels()
        return summary_fingerprint(self.summary, labels)

    def close(self) -> None:
        if self.stored is not None:
            self.stored.close()

    def __enter__(self) -> "StoredSummary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StoredSummary(path={self.path!r}, kind={self.meta.kind!r}, "
            f"method={self.meta.method!r}, seed={self.meta.seed!r})"
        )


def load_summary(path: PathLike, verify: bool = True) -> StoredSummary:
    """Open a summary-bearing container: mmap CSR + decoded summary."""
    info = read_container_info(path, verify=False)
    if not info.has_summary:
        raise ContainerFormatError(
            f"{path}: container carries no summary sections; "
            f"use repro.storage.load for plain graph containers"
        )
    if not info.has_csr:
        raise ContainerFormatError(
            f"{path}: CSR-less checkpoint containers are restored through "
            f"load_checkpoint, not load_summary"
        )
    payloads = _summary_payloads(path, info)
    stored = load_stored_graph(path, verify=verify)
    try:
        labels = stored.csr().index.labels()
        meta, summary = decode_summary_sections(payloads, labels)
    except Exception:
        stored.close()
        raise
    return StoredSummary(path, stored, meta, summary)


@dataclass
class SummaryCheckpoint:
    """A restored iteration-boundary snapshot of an interrupted run."""

    path: str
    meta: SummaryMeta
    summary: HierarchicalSummary
    iteration: int
    rng_state: Tuple
    history: List[Dict]


def load_checkpoint(path: PathLike, subnodes: Sequence,
                    graph_digest: Optional[str] = None) -> SummaryCheckpoint:
    """Restore a checkpoint container against the live graph's node list.

    ``subnodes`` must be the graph's nodes in insertion order (the order
    the original run numbered its leaves); ``graph_digest``, when given,
    is checked against the checkpoint's ``SMET`` digest so a checkpoint
    can never silently resume onto a different graph.
    """
    info = read_container_info(path, verify=False)
    if not info.has_summary or info.maybe_section(TAG_CHECKPOINT) is None:
        raise ContainerFormatError(f"{path}: not a checkpoint container")
    payloads = _summary_payloads(path, info)
    meta, summary = decode_summary_sections(payloads, list(subnodes))
    if meta.kind != "hierarchical":
        raise ContainerFormatError(f"{path}: checkpoints are hierarchical-only")
    if graph_digest is not None and meta.graph_digest != graph_digest:
        raise ContainerFormatError(
            f"{path}: checkpoint was taken on graph {meta.graph_digest[:12]}..., "
            f"refusing to resume onto graph {graph_digest[:12]}..."
        )
    iteration, rng_state, history = _decode_checkpoint_section(payloads[TAG_CHECKPOINT])
    return SummaryCheckpoint(
        path=str(path), meta=meta, summary=summary,
        iteration=iteration, rng_state=rng_state, history=history,
    )


def read_summary_meta(path: PathLike,
                      info: Optional[ContainerInfo] = None) -> SummaryMeta:
    """Read just the ``SMET`` metadata of a summary-bearing container.

    Cheap enough for ``inspect``: only the metadata section is pulled
    off disk (and CRC-checked) — the hierarchy, edge lists, and CSR
    payloads stay untouched.  Works on full summary containers and on
    CSR-less checkpoint containers alike.
    """
    if info is None:
        info = read_container_info(path, verify=False)
    entry = info.maybe_section(TAG_SUMMARY_META)
    if not info.has_summary or entry is None:
        raise ContainerFormatError(f"{path}: container carries no summary metadata")
    try:
        with open(path, "rb") as handle:
            handle.seek(entry.offset)
            payload = handle.read(entry.length)
    except OSError as error:
        raise ContainerFormatError(f"{path}: cannot read container: {error}") from None
    if len(payload) != entry.length:
        raise ContainerFormatError(f"{path}: truncated SMET section")
    actual = zlib.crc32(payload)
    if actual != entry.crc32:
        raise ContainerFormatError(
            f"{path}: section b'SMET' checksum mismatch "
            f"(stored {entry.crc32:#010x}, computed {actual:#010x}); "
            f"the container is corrupted"
        )
    return _decode_meta(payload)


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class SummaryCache:
    """A flat content-addressed directory of summary containers.

    Finished summaries live as ``<key>.slg``; in-flight checkpoints as
    ``<key>.ckpt.slg`` next to them.  ``budget_bytes`` caps the total
    size: after every store, least-recently-touched files are evicted
    (LRU by mtime) until the directory fits.  Loads touch the file's
    mtime, so warm entries survive eviction pressure.
    """

    def __init__(self, directory: PathLike, budget_bytes: Optional[int] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(f"cache budget must be non-negative, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "stores": 0, "corrupt": 0,
            "checkpoint_hits": 0, "checkpoint_misses": 0,
            "checkpoint_stores": 0, "evictions": 0,
        }

    # -- paths ----------------------------------------------------------
    def summary_path(self, key: str) -> Path:
        return self.directory / f"{key}{CONTAINER_SUFFIX}"

    def checkpoint_path(self, key: str) -> Path:
        return self.directory / f"{key}{CHECKPOINT_SUFFIX}"

    def has_summary(self, key: str) -> bool:
        return self.summary_path(key).exists()

    def has_checkpoint(self, key: str) -> bool:
        return self.checkpoint_path(key).exists()

    # -- summaries ------------------------------------------------------
    def store_summary(self, key: str, image: bytes) -> Path:
        """Persist an encoded summary container under its content key."""
        path = self.summary_path(key)
        write_container_image(path, image)
        self.counters["stores"] += 1
        self.drop_checkpoint(key)
        self._evict()
        return path

    def load_summary(self, key: str) -> Optional[StoredSummary]:
        """The cached summary for ``key``, or ``None`` on miss.

        A corrupt entry (failed checksum, bad sections) is discarded and
        reported as a miss — the caller recomputes and overwrites it.
        """
        path = self.summary_path(key)
        if not path.exists():
            self.counters["misses"] += 1
            return None
        try:
            stored = load_summary(path, verify=True)
        except ContainerFormatError:
            self.counters["corrupt"] += 1
            self.counters["misses"] += 1
            path.unlink(missing_ok=True)
            return None
        self.counters["hits"] += 1
        path.touch()
        return stored

    # -- checkpoints ----------------------------------------------------
    def store_checkpoint(self, key: str, image: bytes) -> Path:
        path = self.checkpoint_path(key)
        write_container_image(path, image)
        self.counters["checkpoint_stores"] += 1
        self._evict()
        return path

    def load_checkpoint(self, key: str, subnodes: Sequence,
                        graph_digest: Optional[str] = None) -> Optional[SummaryCheckpoint]:
        """The resumable checkpoint for ``key``, or ``None``.

        Corrupt or mismatched checkpoints are discarded — resuming is an
        optimization, never worth failing a run over.
        """
        path = self.checkpoint_path(key)
        if not path.exists():
            self.counters["checkpoint_misses"] += 1
            return None
        try:
            checkpoint = load_checkpoint(path, subnodes, graph_digest=graph_digest)
        except ContainerFormatError:
            self.counters["corrupt"] += 1
            self.counters["checkpoint_misses"] += 1
            path.unlink(missing_ok=True)
            return None
        self.counters["checkpoint_hits"] += 1
        path.touch()
        return checkpoint

    def drop_checkpoint(self, key: str) -> None:
        self.checkpoint_path(key).unlink(missing_ok=True)

    # -- bookkeeping ----------------------------------------------------
    def _files(self) -> List[Path]:
        return [
            path for path in self.directory.iterdir()
            if path.is_file() and path.name.endswith(CONTAINER_SUFFIX)
            and not path.name.startswith(".")
        ]

    def entries(self) -> List[Dict[str, Any]]:
        """Per-file metadata, oldest first (the eviction order)."""
        records = []
        for path in self._files():
            try:
                stat = path.stat()
            except OSError:
                continue
            records.append({
                "key": path.name[:-len(CHECKPOINT_SUFFIX)]
                if path.name.endswith(CHECKPOINT_SUFFIX)
                else path.name[:-len(CONTAINER_SUFFIX)],
                "kind": "checkpoint"
                if path.name.endswith(CHECKPOINT_SUFFIX) else "summary",
                "path": str(path),
                "bytes": stat.st_size,
                "mtime": stat.st_mtime,
            })
        records.sort(key=lambda record: (record["mtime"], record["path"]))
        return records

    def total_bytes(self) -> int:
        return sum(record["bytes"] for record in self.entries())

    def gc(self, budget_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Evict least-recently-touched entries until under budget.

        ``budget_bytes`` overrides the cache's configured budget for
        this sweep; ``0`` empties the cache.  Returns a report of what
        was evicted and what remains.
        """
        budget = self.budget_bytes if budget_bytes is None else budget_bytes
        records = self.entries()
        total = sum(record["bytes"] for record in records)
        evicted = 0
        freed = 0
        if budget is not None:
            for record in records:
                if total <= budget:
                    break
                try:
                    Path(record["path"]).unlink()
                except OSError:
                    continue
                total -= record["bytes"]
                freed += record["bytes"]
                evicted += 1
        self.counters["evictions"] += evicted
        return {
            "evicted": evicted,
            "freed_bytes": freed,
            "kept": len(records) - evicted,
            "total_bytes": total,
            "budget_bytes": budget,
        }

    def _evict(self) -> None:
        if self.budget_bytes is not None:
            self.gc()

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot: entry counts, sizes, budget, directory."""
        records = self.entries()
        summaries = [record for record in records if record["kind"] == "summary"]
        checkpoints = [record for record in records if record["kind"] == "checkpoint"]
        record = {
            "directory": str(self.directory),
            "entries": len(summaries),
            "checkpoints": len(checkpoints),
            "total_bytes": sum(item["bytes"] for item in records),
            "budget_bytes": self.budget_bytes,
        }
        record.update(self.counters)
        return record
