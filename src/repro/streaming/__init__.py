"""Dynamic-graph streams and online summarization.

The substrate behind the MoSSo baseline and the streaming experiments:
edge events, stream workload generators (insertion-only, fully dynamic,
sliding window), a ground-truth :class:`DynamicGraph`, and the
:class:`OnlineSummarizer` harness that maintains a MoSSo summary while a
stream is replayed.
"""

from repro.streaming.events import EdgeEvent, EventKind, deletion, insertion
from repro.streaming.dynamic import DynamicGraph
from repro.streaming.stream import (
    fully_dynamic_stream,
    insertion_stream,
    replay,
    sliding_window_stream,
    stream_statistics,
)
from repro.streaming.online import (
    OnlineSummarizer,
    StreamCheckpoint,
    StreamReplayResult,
    replay_stream,
)

__all__ = [
    "EdgeEvent",
    "EventKind",
    "insertion",
    "deletion",
    "DynamicGraph",
    "insertion_stream",
    "fully_dynamic_stream",
    "sliding_window_stream",
    "replay",
    "stream_statistics",
    "OnlineSummarizer",
    "StreamCheckpoint",
    "StreamReplayResult",
    "replay_stream",
]
