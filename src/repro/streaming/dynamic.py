"""A dynamic graph that applies stream events and keeps an event log.

:class:`DynamicGraph` is the reference consumer of an edge stream: it
applies every event to an ordinary :class:`~repro.graphs.graph.Graph`
while enforcing stream consistency (no duplicate insertions, no
deletions of absent edges).  The online-summarization experiments
compare the summary maintained by MoSSo against this ground truth after
every batch of events.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.exceptions import StreamError
from repro.graphs.graph import Graph
from repro.streaming.events import EdgeEvent, EventKind

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """A graph maintained incrementally from a stream of edge events."""

    def __init__(self, initial: Optional[Graph] = None) -> None:
        self._graph = initial.copy() if initial is not None else Graph()
        self._log: List[EdgeEvent] = []
        self._time = 0

    @property
    def graph(self) -> Graph:
        """The current graph (a live reference; copy before mutating elsewhere)."""
        return self._graph

    @property
    def time(self) -> int:
        """Number of events applied so far."""
        return self._time

    @property
    def log(self) -> List[EdgeEvent]:
        """Events applied so far, in order."""
        return list(self._log)

    def apply(self, event: EdgeEvent, strict: bool = True) -> bool:
        """Apply one event; return whether the graph changed.

        With ``strict=True`` (the default) inserting an existing edge or
        deleting a missing one raises :class:`~repro.exceptions.StreamError`;
        with ``strict=False`` such events are ignored, which matches how
        MoSSo tolerates redundant updates.
        """
        changed = False
        if event.kind is EventKind.INSERT:
            if self._graph.has_edge(event.u, event.v):
                if strict:
                    raise StreamError(f"edge {event.edge!r} inserted twice")
            else:
                self._graph.add_edge(event.u, event.v)
                changed = True
        elif event.kind is EventKind.DELETE:
            if not self._graph.has_edge(event.u, event.v):
                if strict:
                    raise StreamError(f"edge {event.edge!r} deleted while absent")
            else:
                self._graph.remove_edge(event.u, event.v)
                changed = True
        else:  # pragma: no cover - EventKind is closed
            raise StreamError(f"unknown event kind {event.kind!r}")
        self._log.append(event)
        self._time += 1
        return changed

    def apply_all(self, events: Iterable[EdgeEvent], strict: bool = True) -> int:
        """Apply every event in order; return how many changed the graph."""
        return sum(1 for event in events if self.apply(event, strict=strict))

    def snapshot(self) -> Graph:
        """An independent copy of the current graph."""
        return self._graph.copy()
