"""Edge events of a fully dynamic graph stream.

MoSSo — one of the baselines the paper compares against — is defined on
*fully dynamic graph streams*: sequences of edge insertions and
deletions.  The streaming substrate models such a stream explicitly so
the online-summarization experiments can replay realistic workloads
(insertion-only, sliding-window, mixed churn) instead of only static
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Tuple

from repro.exceptions import StreamError
from repro.graphs.graph import canonical_edge

__all__ = ["EdgeEvent", "EventKind", "deletion", "insertion"]

Node = Hashable


class EventKind(str, Enum):
    """Type of a stream event: an edge insertion or an edge deletion."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped event of a dynamic graph stream.

    Attributes
    ----------
    kind:
        Whether the edge is inserted or deleted.
    u, v:
        Endpoints of the undirected edge (distinct nodes).
    time:
        Monotonically non-decreasing position of the event in the stream.
    """

    kind: EventKind
    u: Node
    v: Node
    time: int = 0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise StreamError(f"stream events must not be self-loops (node {self.u!r})")
        if not isinstance(self.kind, EventKind):
            raise StreamError(f"kind must be an EventKind, got {self.kind!r}")
        if self.time < 0:
            raise StreamError(f"event time must be non-negative, got {self.time}")

    @property
    def edge(self) -> Tuple[Node, Node]:
        """The canonical undirected edge the event refers to."""
        return canonical_edge(self.u, self.v)

    @property
    def is_insertion(self) -> bool:
        """Whether the event inserts the edge."""
        return self.kind is EventKind.INSERT

    @property
    def is_deletion(self) -> bool:
        """Whether the event deletes the edge."""
        return self.kind is EventKind.DELETE


def insertion(u: Node, v: Node, time: int = 0) -> EdgeEvent:
    """Shorthand for an insertion event."""
    return EdgeEvent(EventKind.INSERT, u, v, time)


def deletion(u: Node, v: Node, time: int = 0) -> EdgeEvent:
    """Shorthand for a deletion event."""
    return EdgeEvent(EventKind.DELETE, u, v, time)
