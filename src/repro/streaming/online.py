"""Online summarization harness: maintain a summary while a stream is replayed.

:class:`OnlineSummarizer` wires a :class:`~repro.streaming.dynamic.DynamicGraph`
to a MoSSo instance: every event updates both, and at configurable
checkpoints the harness records the relative output size of the
maintained summary against the *current* graph (validating losslessness
on the way).  This reproduces the measurement protocol of the MoSSo
paper — compression quality tracked over a fully dynamic stream — on the
same substrate as the offline comparisons, and it backs the streaming
bench and the ``streaming_summarization`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.mosso import MoSSo, MossoConfig
from repro.exceptions import StreamError
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.streaming.dynamic import DynamicGraph
from repro.streaming.events import EdgeEvent

__all__ = [
    "OnlineSummarizer",
    "StreamCheckpoint",
    "StreamReplayResult",
    "replay_stream",
]


@dataclass
class StreamCheckpoint:
    """Quality snapshot taken while replaying a stream."""

    time: int
    num_edges: int
    cost: int
    relative_size: float


@dataclass
class StreamReplayResult:
    """Outcome of replaying one stream through the online summarizer."""

    checkpoints: List[StreamCheckpoint] = field(default_factory=list)
    final_summary: Optional[FlatSummary] = None
    final_graph: Optional[Graph] = None
    events_applied: int = 0

    def final_relative_size(self) -> float:
        """Relative output size at the end of the stream."""
        if not self.checkpoints:
            raise StreamError("no checkpoints were recorded")
        return self.checkpoints[-1].relative_size

    def as_rows(self) -> List[Dict[str, float]]:
        """Checkpoint records as plain dictionaries (for reporting helpers)."""
        return [
            {
                "time": float(point.time),
                "num_edges": float(point.num_edges),
                "cost": float(point.cost),
                "relative_size": point.relative_size,
            }
            for point in self.checkpoints
        ]


class OnlineSummarizer:
    """Maintains a MoSSo summary and a ground-truth graph over an event stream."""

    def __init__(self, config: Optional[MossoConfig] = None, **overrides) -> None:
        self._mosso = MoSSo(config, **overrides)
        self._dynamic = DynamicGraph()

    @property
    def graph(self) -> Graph:
        """The ground-truth graph accumulated from the stream."""
        return self._dynamic.graph

    @property
    def substrate(self):
        """The summarizer's dense integer-id adjacency (or ``None`` before any event).

        Maintained incrementally by the grouping state, so streaming
        consumers get the array-backed substrate for free instead of
        rebuilding adjacency per checkpoint.
        """
        return self._mosso.substrate

    @property
    def time(self) -> int:
        """Number of events applied so far."""
        return self._dynamic.time

    def apply(self, event: EdgeEvent, strict: bool = False) -> None:
        """Apply one event to both the ground truth and the maintained summary."""
        self._dynamic.apply(event, strict=strict)
        if event.is_insertion:
            self._mosso.add_edge(event.u, event.v)
        else:
            self._mosso.remove_edge(event.u, event.v)

    def summary(self) -> FlatSummary:
        """The currently maintained flat summary."""
        return self._mosso.summary()

    def checkpoint(self, validate: bool = True) -> StreamCheckpoint:
        """Record (and optionally validate) the summary quality right now."""
        graph = self._dynamic.graph
        summary = self.summary()
        if validate:
            summary.validate(graph)
        cost = summary.cost_eq11()
        relative = cost / graph.num_edges if graph.num_edges else 0.0
        return StreamCheckpoint(
            time=self._dynamic.time,
            num_edges=graph.num_edges,
            cost=cost,
            relative_size=relative,
        )

    def replay(
        self,
        events: List[EdgeEvent],
        checkpoints: int = 10,
        validate: bool = True,
    ) -> StreamReplayResult:
        """Replay a whole stream, recording ``checkpoints`` evenly spaced snapshots.

        The final event always triggers a checkpoint so the result ends
        with the quality of the completed stream.
        """
        if checkpoints < 1:
            raise StreamError(f"checkpoints must be >= 1, got {checkpoints}")
        result = StreamReplayResult()
        if not events:
            return result
        interval = max(1, len(events) // checkpoints)
        for index, event in enumerate(events):
            self.apply(event)
            result.events_applied += 1
            is_last = index == len(events) - 1
            if is_last or (index + 1) % interval == 0:
                if self._dynamic.graph.num_edges > 0:
                    result.checkpoints.append(self.checkpoint(validate=validate))
        result.final_summary = self.summary()
        result.final_graph = self._dynamic.snapshot()
        return result


def replay_stream(
    events: List[EdgeEvent],
    config: Optional[MossoConfig] = None,
    checkpoints: int = 10,
    validate: bool = True,
) -> StreamReplayResult:
    """Convenience wrapper: replay ``events`` through a fresh :class:`OnlineSummarizer`."""
    summarizer = OnlineSummarizer(config)
    return summarizer.replay(events, checkpoints=checkpoints, validate=validate)
