"""Edge-stream workload generators.

The MoSSo paper (and Sect. V of SLUGGER's related work) evaluates online
summarization on three stream shapes, all of which are generated here
from any static graph:

* :func:`insertion_stream` — the edges of a graph replayed in random
  order (how the paper compares MoSSo against offline methods);
* :func:`fully_dynamic_stream` — insertions interleaved with deletions
  of previously inserted edges (churn), ending with a prescribed
  fraction of the graph present;
* :func:`sliding_window_stream` — every edge is inserted and later
  deleted once it falls out of a fixed-size window, modelling
  time-decaying interaction graphs.

Each generator returns a plain list of :class:`EdgeEvent` so streams can
be inspected, truncated, and replayed deterministically in tests and
benches.  :func:`replay` folds a stream back into a static graph, which
is the ground truth the online summarizer is validated against.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.exceptions import StreamError
from repro.graphs.graph import Graph, canonical_edge
from repro.streaming.events import EdgeEvent, deletion, insertion
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_probability, require_type

__all__ = [
    "fully_dynamic_stream",
    "insertion_stream",
    "replay",
    "sliding_window_stream",
    "stream_statistics",
]


def _shuffled_edges(graph: Graph, seed: SeedLike) -> List[Tuple]:
    edges = sorted(graph.edges(), key=repr)
    ensure_rng(seed).shuffle(edges)
    return edges


def insertion_stream(graph: Graph, seed: SeedLike = 0) -> List[EdgeEvent]:
    """Replay all edges of ``graph`` as insertions in random order."""
    require_type(graph, Graph, "graph")
    return [
        insertion(u, v, time=index)
        for index, (u, v) in enumerate(_shuffled_edges(graph, seed))
    ]


def fully_dynamic_stream(
    graph: Graph,
    deletion_ratio: float = 0.2,
    seed: SeedLike = 0,
) -> List[EdgeEvent]:
    """Insert every edge of ``graph``, interleaving deletions of a fraction of them.

    ``deletion_ratio`` is the fraction of inserted edges that are deleted
    again later in the stream (and then re-inserted at the end so that
    the stream's final state equals ``graph`` — keeping the final-state
    comparison against offline methods meaningful).
    """
    require_type(graph, Graph, "graph")
    require_probability(deletion_ratio, "deletion_ratio")
    rng = ensure_rng(seed)
    events: List[EdgeEvent] = []
    inserted: List[Tuple] = []
    deleted: Set[Tuple] = set()
    time = 0
    for u, v in _shuffled_edges(graph, rng):
        events.append(insertion(u, v, time=time))
        inserted.append(canonical_edge(u, v))
        time += 1
        # Occasionally delete one of the edges inserted so far.
        if inserted and rng.random() < deletion_ratio:
            victim = inserted[rng.randrange(len(inserted))]
            if victim not in deleted:
                events.append(deletion(victim[0], victim[1], time=time))
                deleted.add(victim)
                time += 1
    # Re-insert deleted edges so the stream converges to the input graph.
    for u, v in sorted(deleted, key=repr):
        events.append(insertion(u, v, time=time))
        time += 1
    return events


def sliding_window_stream(
    graph: Graph,
    window: int,
    seed: SeedLike = 0,
) -> List[EdgeEvent]:
    """Insert edges in random order, deleting each edge ``window`` insertions later.

    The final state contains only the last ``window`` inserted edges,
    which models interaction graphs where old events expire.
    """
    require_type(graph, Graph, "graph")
    if window < 1:
        raise StreamError(f"window must be >= 1, got {window}")
    edges = _shuffled_edges(graph, seed)
    events: List[EdgeEvent] = []
    time = 0
    for index, (u, v) in enumerate(edges):
        events.append(insertion(u, v, time=time))
        time += 1
        expired = index - window + 1
        if expired >= 0 and index + 1 < len(edges):
            old_u, old_v = edges[expired]
            events.append(deletion(old_u, old_v, time=time))
            time += 1
    return events


def replay(events: List[EdgeEvent], initial: Optional[Graph] = None, strict: bool = True) -> Graph:
    """Fold a stream of events into the static graph it produces."""
    graph = initial.copy() if initial is not None else Graph()
    for event in events:
        if event.is_insertion:
            if graph.has_edge(event.u, event.v):
                if strict:
                    raise StreamError(f"edge {event.edge!r} inserted twice at time {event.time}")
            else:
                graph.add_edge(event.u, event.v)
        else:
            if not graph.has_edge(event.u, event.v):
                if strict:
                    raise StreamError(f"edge {event.edge!r} deleted while absent at time {event.time}")
            else:
                graph.remove_edge(event.u, event.v)
    return graph


def stream_statistics(events: List[EdgeEvent]) -> dict:
    """Simple per-stream statistics used by reports and tests."""
    insertions = sum(1 for event in events if event.is_insertion)
    deletions = len(events) - insertions
    return {
        "num_events": len(events),
        "num_insertions": insertions,
        "num_deletions": deletions,
        "deletion_share": deletions / len(events) if events else 0.0,
    }
