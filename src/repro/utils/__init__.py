"""Shared low-level utilities: RNG handling, validation, timing, statistics."""

from repro.utils.rng import ensure_rng, spawn_seeds
from repro.utils.stats import linear_fit, mean, pearson_correlation, stdev
from repro.utils.timing import Stopwatch, time_call
from repro.utils.validation import (
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "ensure_rng",
    "spawn_seeds",
    "linear_fit",
    "mean",
    "pearson_correlation",
    "stdev",
    "Stopwatch",
    "time_call",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "require_type",
]
