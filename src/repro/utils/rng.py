"""Random-number-generator helpers.

Every randomized component in the library accepts either ``None``, an
integer seed, or a ready-made :class:`random.Random` instance.  These
helpers normalize that convention in one place so all algorithms stay
deterministic when a seed is supplied.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

__all__ = ["ensure_rng", "spawn_seeds"]

SeedLike = Union[None, int, random.Random]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``None`` yields a freshly-seeded generator, an ``int`` yields a
    deterministic generator, and an existing ``Random`` is returned as-is
    so callers can thread one generator through multiple components.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random()
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(f"seed must be None, an int, or random.Random, got {type(seed).__name__}")
    return random.Random(seed)


def spawn_seeds(seed: SeedLike, count: int) -> List[int]:
    """Derive ``count`` independent integer seeds from ``seed``.

    Used when one user-facing seed must drive several independent
    components (e.g. one seed per summarization iteration).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(seed)
    return [rng.randrange(2**63) for _ in range(count)]
