"""Small statistics helpers used by experiments and tests.

These avoid pulling heavier dependencies into hot paths; the experiment
harness only needs means, standard deviations, a least-squares line, and
a Pearson correlation.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["linear_fit", "mean", "pearson_correlation", "stdev"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of ``values`` (raises on an empty sequence)."""
    if not values:
        raise ValueError("mean() requires at least one value")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation of ``values``."""
    if not values:
        raise ValueError("stdev() requires at least one value")
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / len(values))


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares fit ``y = slope * x + intercept``.

    Returns ``(slope, intercept, r_squared)``.  Used by the scalability
    experiment (Fig. 1(b)) to quantify how linear runtime is in |E|.
    """
    if len(xs) != len(ys):
        raise ValueError("linear_fit() requires sequences of equal length")
    if len(xs) < 2:
        raise ValueError("linear_fit() requires at least two points")
    x_mean = mean(xs)
    y_mean = mean(ys)
    sxx = sum((x - x_mean) ** 2 for x in xs)
    sxy = sum((x - x_mean) * (y - y_mean) for x, y in zip(xs, ys))
    syy = sum((y - y_mean) ** 2 for y in ys)
    if sxx == 0:
        raise ValueError("linear_fit() requires at least two distinct x values")
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean
    if syy == 0:
        r_squared = 1.0
    else:
        r_squared = (sxy * sxy) / (sxx * syy)
    return slope, intercept, r_squared


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between ``xs`` and ``ys``."""
    if len(xs) != len(ys):
        raise ValueError("pearson_correlation() requires sequences of equal length")
    if len(xs) < 2:
        raise ValueError("pearson_correlation() requires at least two points")
    x_mean = mean(xs)
    y_mean = mean(ys)
    sxx = sum((x - x_mean) ** 2 for x in xs)
    syy = sum((y - y_mean) ** 2 for y in ys)
    sxy = sum((x - x_mean) * (y - y_mean) for x, y in zip(xs, ys))
    if sxx == 0 or syy == 0:
        raise ValueError("pearson_correlation() is undefined for constant sequences")
    return sxy / math.sqrt(sxx * syy)
