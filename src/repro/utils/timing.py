"""Lightweight monotonic interval timing used by the experiment harness.

Everything here measures elapsed intervals with
:func:`time.perf_counter` — a monotonic, high-resolution clock — never
wall-clock time (``time.time``), so timings are immune to system clock
adjustments and safe under the repo's determinism lint.
:class:`Stopwatch` is the canonical timer for the whole codebase and is
re-exported from :mod:`repro.obs` alongside the telemetry substrate.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple

from repro.exceptions import InvalidStateError

__all__ = ["Stopwatch", "time_call"]


class Stopwatch:
    """A resettable monotonic stopwatch over ``time.perf_counter``.

    Measures elapsed intervals, not time-of-day: readings are
    differences of a monotonic clock, so they never go backwards and
    are unaffected by NTP slews or timezone changes.

    Example
    -------
    >>> watch = Stopwatch()
    >>> watch.start()
    >>> _ = sum(range(1000))
    >>> elapsed = watch.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._started_at: float = 0.0
        self._elapsed: float = 0.0
        self._running = False

    def start(self) -> "Stopwatch":
        """Start (or restart) timing from zero."""
        self._started_at = time.perf_counter()
        self._elapsed = 0.0
        self._running = True
        return self

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds."""
        if not self._running:
            raise InvalidStateError("Stopwatch.stop() called before start()")
        self._elapsed = time.perf_counter() - self._started_at
        self._running = False
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Seconds measured by the last completed start/stop cycle."""
        if self._running:
            return time.perf_counter() - self._started_at
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def time_call(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - started
