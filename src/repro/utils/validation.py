"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

__all__ = [
    "require_non_negative",
    "require_positive",
    "require_probability",
    "require_type",
]


def require_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is zero or positive."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value
