"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    caveman_graph,
    complete_bipartite_graph,
    complete_graph,
    erdos_renyi_graph,
    nested_partition_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def triangle_graph() -> Graph:
    """The smallest non-trivial graph: a triangle."""
    return Graph(edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_clique() -> Graph:
    """A 6-node clique — the best case for summarization."""
    return complete_graph(6)


@pytest.fixture
def small_bipartite() -> Graph:
    """A complete bipartite graph K_{4,5}."""
    return complete_bipartite_graph(4, 5)


@pytest.fixture
def small_caveman() -> Graph:
    """Four 5-cliques with a little rewiring."""
    return caveman_graph(4, 5, 0.05, seed=7)


@pytest.fixture
def small_random() -> Graph:
    """A sparse Erdős–Rényi graph."""
    return erdos_renyi_graph(40, 0.12, seed=11)


@pytest.fixture
def small_hierarchical() -> Graph:
    """A nested planted-partition graph with clear two-level structure."""
    return nested_partition_graph((3, 4, 5), (0.02, 0.25, 0.9), seed=3)


@pytest.fixture
def small_star() -> Graph:
    """A star with 8 leaves."""
    return star_graph(8)


@pytest.fixture
def small_path() -> Graph:
    """A path on 10 nodes."""
    return path_graph(10)


@pytest.fixture(
    params=["triangle", "clique", "bipartite", "caveman", "random", "hierarchical", "star", "path"]
)
def any_small_graph(request, triangle_graph, small_clique, small_bipartite, small_caveman,
                    small_random, small_hierarchical, small_star, small_path) -> Graph:
    """Parametrized fixture cycling over all structural test graphs."""
    graphs = {
        "triangle": triangle_graph,
        "clique": small_clique,
        "bipartite": small_bipartite,
        "caveman": small_caveman,
        "random": small_random,
        "hierarchical": small_hierarchical,
        "star": small_star,
        "path": small_path,
    }
    return graphs[request.param]
