"""Tests for graph algorithms running on raw graphs and on summaries."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    as_neighbor_function,
    bfs_distances,
    bfs_order,
    connected_component_of,
    count_triangles,
    dfs_order,
    dijkstra_distances,
    local_triangle_counts,
    node_universe,
    pagerank,
    shortest_path,
)
from repro.baselines import sweg_summarize
from repro.core import Slugger, SluggerConfig
from repro.graphs import Graph, caveman_graph, complete_graph, erdos_renyi_graph, path_graph, star_graph


@pytest.fixture
def providers(small_caveman):
    """The same graph as a raw graph, a hierarchical summary, and a flat summary."""
    hierarchical = Slugger(SluggerConfig(iterations=5, seed=0)).summarize(small_caveman).summary
    flat = sweg_summarize(small_caveman, iterations=5, seed=0)
    return small_caveman, hierarchical, flat


class TestNeighborProviders:
    def test_all_providers_agree_on_neighbors(self, providers):
        graph, hierarchical, flat = providers
        for node in graph.nodes():
            expected = set(graph.neighbor_set(node))
            assert hierarchical.neighbors(node) == expected
            assert flat.neighbors(node) == expected

    def test_node_universe(self, providers):
        graph, hierarchical, flat = providers
        expected = set(graph.nodes())
        assert set(node_universe(hierarchical)) == expected
        assert set(node_universe(flat)) == expected

    def test_unsupported_provider_rejected(self):
        with pytest.raises(TypeError):
            as_neighbor_function({"not": "a graph"})
        with pytest.raises(TypeError):
            node_universe(42)


class TestTraversal:
    def test_bfs_distances_on_path(self):
        graph = path_graph(6)
        distances = bfs_distances(graph, 0)
        assert distances == {node: node for node in range(6)}

    def test_bfs_and_dfs_cover_component(self, providers):
        graph, hierarchical, _flat = providers
        source = graph.nodes()[0]
        expected = connected_component_of(graph, source)
        assert set(bfs_order(hierarchical, source)) == expected
        assert set(dfs_order(hierarchical, source)) == expected

    def test_dfs_matches_graph_and_summary(self, providers):
        graph, hierarchical, flat = providers
        source = graph.nodes()[0]
        assert dfs_order(graph, source) == dfs_order(hierarchical, source) == dfs_order(flat, source)

    def test_bfs_on_star(self):
        graph = star_graph(5)
        order = bfs_order(graph, 0)
        assert order[0] == 0
        assert set(order) == set(graph.nodes())


class TestPagerank:
    def test_scores_sum_to_one(self, providers):
        graph, hierarchical, _flat = providers
        scores = pagerank(hierarchical, iterations=10)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_hub_has_highest_score(self):
        graph = star_graph(6)
        scores = pagerank(graph, iterations=30)
        assert max(scores, key=scores.get) == 0

    def test_summary_matches_graph(self, providers):
        graph, hierarchical, flat = providers
        on_graph = pagerank(graph, iterations=8)
        on_hierarchical = pagerank(hierarchical, iterations=8)
        on_flat = pagerank(flat, iterations=8)
        for node in graph.nodes():
            assert on_hierarchical[node] == pytest.approx(on_graph[node], abs=1e-12)
            assert on_flat[node] == pytest.approx(on_graph[node], abs=1e-12)

    def test_empty_graph(self):
        assert pagerank(Graph()) == {}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            pagerank(complete_graph(3), damping=1.5)
        with pytest.raises(ValueError):
            pagerank(complete_graph(3), iterations=0)


class TestShortestPaths:
    def test_unit_weights_match_bfs(self, providers):
        graph, hierarchical, _flat = providers
        source = graph.nodes()[0]
        bfs = bfs_distances(graph, source)
        dijkstra = dijkstra_distances(hierarchical, source)
        assert {node: int(distance) for node, distance in dijkstra.items()} == bfs

    def test_weighted_distances(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        weights = {(0, 1): 1.0, (1, 0): 1.0, (1, 2): 1.0, (2, 1): 1.0, (0, 2): 5.0, (2, 0): 5.0}
        distances = dijkstra_distances(graph, 0, weight=lambda u, v: weights[(u, v)])
        assert distances[2] == pytest.approx(2.0)

    def test_negative_weight_rejected(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(ValueError):
            dijkstra_distances(graph, 0, weight=lambda u, v: -1.0)

    def test_shortest_path_endpoints(self):
        graph = path_graph(5)
        path = shortest_path(graph, 0, 4)
        assert path == [0, 1, 2, 3, 4]

    def test_shortest_path_unreachable(self):
        graph = Graph(edges=[(0, 1)])
        graph.add_node(9)
        assert shortest_path(graph, 0, 9) is None


class TestTriangles:
    def test_complete_graph_count(self):
        assert count_triangles(complete_graph(5)) == 10

    def test_triangle_free_graph(self):
        assert count_triangles(path_graph(6)) == 0

    def test_summary_matches_graph(self, providers):
        graph, hierarchical, flat = providers
        expected = count_triangles(graph)
        assert count_triangles(hierarchical) == expected
        assert count_triangles(flat) == expected

    def test_local_counts_sum(self):
        graph = caveman_graph(2, 4, seed=0)
        local = local_triangle_counts(graph)
        assert sum(local.values()) == 3 * count_triangles(graph)
