"""Tests for the extended summary-aware algorithms (components, cores, clustering, communities)."""

import networkx as nx
import pytest

from repro.algorithms import (
    average_clustering,
    community_sizes,
    connected_components,
    core_numbers,
    is_connected,
    k_core_nodes,
    label_propagation_communities,
    largest_component,
    local_clustering,
    max_core,
    modularity,
    num_connected_components,
)
from repro.baselines import sweg_summarize
from repro.core import SluggerConfig, summarize
from repro.graphs import (
    Graph,
    caveman_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)


def _providers(graph, seed=0):
    """The same graph as raw adjacency, SLUGGER summary, and SWeG summary."""
    hierarchical = summarize(graph, SluggerConfig(iterations=5, seed=seed)).summary
    flat = sweg_summarize(graph, iterations=5, seed=seed)
    return {"graph": graph, "hierarchical": hierarchical, "flat": flat}


def _to_networkx(graph):
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


class TestConnectedComponents:
    def test_disconnected_graph_components(self):
        graph = Graph(edges=[(0, 1), (1, 2), (10, 11)], nodes=[20])
        components = connected_components(graph)
        assert sorted(map(len, components), reverse=True) == [3, 2, 1]
        assert num_connected_components(graph) == 3
        assert largest_component(graph) == {0, 1, 2}
        assert not is_connected(graph)

    def test_connected_graph(self):
        graph = cycle_graph(7)
        assert is_connected(graph)
        assert num_connected_components(graph) == 1

    def test_empty_graph_is_vacuously_connected(self):
        assert is_connected(Graph())
        assert largest_component(Graph()) == set()

    def test_all_providers_agree(self):
        graph = caveman_graph(3, 5, 0.1, seed=1)
        expected = connected_components(graph)
        for provider in _providers(graph).values():
            got = connected_components(provider)
            assert sorted(map(frozenset, got)) == sorted(map(frozenset, expected))

    def test_matches_networkx(self):
        graph = erdos_renyi_graph(40, 0.05, seed=2)
        ours = {frozenset(component) for component in connected_components(graph)}
        theirs = {frozenset(component) for component in nx.connected_components(_to_networkx(graph))}
        assert ours == theirs


class TestCoreNumbers:
    def test_complete_graph_core(self):
        graph = complete_graph(6)
        cores = core_numbers(graph)
        assert set(cores.values()) == {5}
        assert max_core(graph) == 5

    def test_star_graph_core(self):
        graph = star_graph(5)
        assert max_core(graph) == 1

    def test_path_graph_core(self):
        assert max_core(path_graph(6)) == 1

    def test_matches_networkx_on_random_graphs(self):
        for seed in (0, 1, 2):
            graph = erdos_renyi_graph(35, 0.15, seed=seed)
            assert core_numbers(graph) == nx.core_number(_to_networkx(graph))

    def test_k_core_nodes(self):
        graph = caveman_graph(3, 5, 0.0, seed=0)
        # Each clique of 5 nodes is a 4-core.
        assert k_core_nodes(graph, 4) == set(graph.nodes())
        assert k_core_nodes(graph, 5) == set()
        with pytest.raises(ValueError):
            k_core_nodes(graph, -1)

    def test_summary_provider_matches_graph(self):
        graph = caveman_graph(4, 4, 0.1, seed=3)
        providers = _providers(graph)
        assert core_numbers(providers["hierarchical"]) == core_numbers(graph)
        assert core_numbers(providers["flat"]) == core_numbers(graph)

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}
        assert max_core(Graph()) == 0


class TestClustering:
    def test_complete_graph_clustering_is_one(self):
        graph = complete_graph(5)
        assert average_clustering(graph) == pytest.approx(1.0)
        assert local_clustering(graph, 0) == pytest.approx(1.0)

    def test_tree_clustering_is_zero(self):
        graph = star_graph(6)
        assert average_clustering(graph) == 0.0

    def test_low_degree_nodes_have_zero_coefficient(self):
        graph = path_graph(3)
        assert local_clustering(graph, 0) == 0.0

    def test_matches_networkx(self):
        graph = erdos_renyi_graph(30, 0.2, seed=4)
        assert average_clustering(graph) == pytest.approx(
            nx.average_clustering(_to_networkx(graph)), abs=1e-9
        )

    def test_summary_provider_matches_graph(self):
        graph = caveman_graph(3, 5, 0.1, seed=5)
        providers = _providers(graph)
        assert average_clustering(providers["hierarchical"]) == pytest.approx(
            average_clustering(graph)
        )

    def test_empty_graph(self):
        assert average_clustering(Graph()) == 0.0


class TestCommunities:
    def test_caveman_communities_recovered(self):
        graph = caveman_graph(4, 6, 0.0, seed=0)
        communities = label_propagation_communities(graph, seed=0)
        assert community_sizes(communities) == [6, 6, 6, 6]

    def test_modularity_of_good_partition_is_high(self):
        graph = caveman_graph(4, 6, 0.0, seed=0)
        communities = label_propagation_communities(graph, seed=0)
        assert modularity(graph, communities) > 0.5

    def test_modularity_of_single_block_is_zero(self):
        graph = caveman_graph(4, 6, 0.0, seed=0)
        assert modularity(graph, [set(graph.nodes())]) == pytest.approx(0.0)

    def test_runs_on_summary_provider(self):
        graph = caveman_graph(3, 6, 0.05, seed=1)
        summary = summarize(graph, SluggerConfig(iterations=5, seed=0)).summary
        communities = label_propagation_communities(summary, seed=0)
        assert sum(map(len, communities)) == graph.num_nodes

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            label_propagation_communities(complete_graph(3), max_rounds=0)

    def test_modularity_of_empty_graph(self):
        assert modularity(Graph(), []) == 0.0
