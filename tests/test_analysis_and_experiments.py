"""Tests for the analysis metrics, method comparison, and experiment harness."""

from __future__ import annotations

import pytest

from repro.analysis import (
    MethodResult,
    compare_methods,
    compression_report,
    default_methods,
    edge_composition,
    hierarchy_statistics,
    relative_size,
)
from repro.baselines import sweg_summarize
from repro.core import Slugger, SluggerConfig
from repro.exceptions import SummaryInvariantError
from repro.experiments import (
    ExperimentRecord,
    composition_experiment,
    format_series,
    format_table,
    headline_experiment,
    height_sweep,
    iteration_sweep,
    pruning_ablation,
    run_repeated,
    scalability_experiment,
    summary_algorithm_experiment,
    sweep,
    theorem1_experiment,
)
from repro.graphs import Graph, caveman_graph


@pytest.fixture(scope="module")
def caveman_and_summaries():
    graph = caveman_graph(4, 5, 0.05, seed=3)
    hierarchical = Slugger(SluggerConfig(iterations=5, seed=0)).summarize(graph).summary
    flat = sweg_summarize(graph, iterations=5, seed=0)
    return graph, hierarchical, flat


class TestMetrics:
    def test_relative_size(self, caveman_and_summaries):
        graph, hierarchical, flat = caveman_and_summaries
        assert relative_size(hierarchical, graph) == pytest.approx(hierarchical.cost() / graph.num_edges)
        assert relative_size(flat, graph) == pytest.approx(flat.cost_eq11() / graph.num_edges)

    def test_relative_size_requires_edges(self, caveman_and_summaries):
        _graph, hierarchical, _flat = caveman_and_summaries
        with pytest.raises(SummaryInvariantError):
            relative_size(hierarchical, Graph(nodes=[0]))

    def test_edge_composition_sums_to_one(self, caveman_and_summaries):
        _graph, hierarchical, flat = caveman_and_summaries
        for summary in (hierarchical, flat):
            shares = edge_composition(summary)
            assert sum(shares.values()) == pytest.approx(1.0)
            assert all(0.0 <= value <= 1.0 for value in shares.values())

    def test_edge_composition_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            edge_composition("not a summary")

    def test_hierarchy_statistics(self, caveman_and_summaries):
        _graph, hierarchical, flat = caveman_and_summaries
        deep = hierarchy_statistics(hierarchical)
        shallow = hierarchy_statistics(flat)
        assert deep["max_height"] >= shallow["max_height"] - 1e-9
        assert shallow["max_height"] in (0.0, 1.0)

    def test_compression_report_fields(self, caveman_and_summaries):
        graph, hierarchical, _flat = caveman_and_summaries
        report = compression_report(hierarchical, graph)
        expected_keys = {
            "num_nodes", "num_edges", "cost", "relative_size",
            "share_p_edges", "share_n_edges", "share_h_edges",
            "max_height", "average_leaf_depth",
        }
        assert expected_keys <= set(report)


class TestComparison:
    def test_compare_methods_orders_by_size(self, caveman_and_summaries):
        graph, _hierarchical, _flat = caveman_and_summaries
        results = compare_methods(graph, methods=default_methods(iterations=3), seed=0)
        assert len(results) == 5
        sizes = [result.relative_size for result in results]
        assert sizes == sorted(sizes)
        assert {result.method for result in results} == {
            "slugger", "sweg", "mosso", "randomized", "sags"
        }

    def test_compare_methods_custom_subset(self, caveman_and_summaries):
        graph, _hierarchical, _flat = caveman_and_summaries
        methods = {name: fn for name, fn in default_methods(iterations=3).items()
                   if name in ("slugger", "sweg")}
        results = compare_methods(graph, methods=methods, seed=0)
        assert len(results) == 2
        assert all(isinstance(result, MethodResult) for result in results)


class TestRunnerAndReporting:
    def test_run_repeated_aggregates(self):
        aggregated = run_repeated(lambda seed: {"value": float(seed)}, repetitions=3, base_seed=1)
        assert aggregated["value"] == pytest.approx(2.0)
        assert aggregated["value_std"] > 0
        assert aggregated["repetitions"] == 3.0

    def test_run_repeated_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            run_repeated(lambda seed: {"value": 1.0}, repetitions=0)

    def test_run_repeated_aggregates_union_of_keys(self):
        def sample(seed):
            values = {"always": float(seed)}
            if seed >= 1:
                values["late"] = float(seed * 10)
            return values

        aggregated = run_repeated(sample, repetitions=3, base_seed=0)
        # "late" only appears in the 2nd and 3rd samples but must not be
        # dropped; the missing repetition is surfaced explicitly.
        assert aggregated["late"] == pytest.approx(15.0)
        assert aggregated["late_missing"] == 1.0
        assert "always_missing" not in aggregated
        assert aggregated["always"] == pytest.approx(1.0)

    def test_run_repeated_single_repetition_has_zero_std(self):
        aggregated = run_repeated(lambda seed: {"value": 5.0}, repetitions=1)
        assert aggregated["value"] == 5.0
        assert aggregated["value_std"] == 0.0

    def test_sweep_records(self):
        records = sweep(lambda x, y: {"sum": float(x + y)}, "x", [1, 2, 3], y=10)
        assert [record.values["sum"] for record in records] == [11.0, 12.0, 13.0]
        assert records[0].parameters["x"] == 1
        assert records[0].as_row()["y"] == 10

    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}]
        text = format_table(rows, ["a", "b"], title="demo")
        assert "demo" in text
        assert "20" in text
        assert "0.250" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], ["a"])

    def test_format_series(self):
        text = format_series([1, 2], [0.1, 0.2], "x", "y", title="curve")
        assert "curve" in text
        assert "0.200" in text


class TestExperiments:
    def test_headline_experiment_has_all_methods(self):
        records = headline_experiment(dataset="CA", iterations=2, seed=0)
        methods = {record.parameters["method"] for record in records}
        assert methods == {"slugger", "sweg", "mosso", "randomized", "sags"}
        for record in records:
            assert 0 < record.values["relative_size"] <= 1.6

    def test_scalability_experiment_reports_fit(self):
        records = scalability_experiment(dataset="CA", fractions=(0.4, 0.7, 1.0),
                                          iterations=2, seed=0)
        assert records[-1].label == "linear-fit"
        assert 0.0 <= records[-1].values["r_squared"] <= 1.0
        assert len(records) == 4

    def test_composition_experiment_shares(self):
        records = composition_experiment(["CA"], iterations=2, seed=0)
        record = records[0]
        total = (
            record.values["share_p_edges"]
            + record.values["share_n_edges"]
            + record.values["share_h_edges"]
        )
        assert total == pytest.approx(1.0)

    def test_iteration_sweep_monotone_tendency(self):
        records = iteration_sweep(["DB"], iteration_values=(1, 4), seed=0)
        sizes = {record.parameters["iterations"]: record.values["relative_size"] for record in records}
        assert sizes[4] <= sizes[1] + 0.05

    def test_pruning_ablation_stages(self):
        records = pruning_ablation(["DB"], iterations=3, seed=0)
        stages = {record.parameters["stage"]: record.values for record in records}
        assert set(stages) == {0, 1, 2, 3}
        assert stages[3]["relative_size"] <= stages[0]["relative_size"] + 1e-9
        assert stages[3]["max_height"] <= stages[0]["max_height"] + 1e-9

    def test_height_sweep_depth_increases_with_bound(self):
        records = height_sweep(["DB"], bounds=(1, None), iterations=3, seed=0)
        by_bound = {record.parameters["height_bound"]: record.values for record in records}
        assert by_bound[1]["average_leaf_depth"] <= by_bound[None]["average_leaf_depth"] + 1e-9
        assert by_bound[1]["max_height"] <= 1.0

    def test_summary_algorithm_experiment_agreement(self):
        records = summary_algorithm_experiment(dataset="CA", iterations=2, seed=0,
                                               pagerank_iterations=3)
        assert {record.parameters["algorithm"] for record in records} == {
            "bfs", "pagerank", "dijkstra", "triangles"
        }
        for record in records:
            assert record.values["results_agree"] == 1.0

    def test_theorem1_experiment_gap(self):
        records = theorem1_experiment(sizes=(4, 6), k=2, iterations=4, seed=0)
        assert len(records) == 2
        for record in records:
            assert record.values["hierarchical_cost"] <= record.values["flat_cost"]
