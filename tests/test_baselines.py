"""Tests for the baseline summarizers (Randomized, Greedy, SWeG, SAGS, MoSSo)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    FlatGroupingState,
    MoSSo,
    MossoConfig,
    SagsConfig,
    SwegConfig,
    drop_corrections,
    greedy_summarize,
    mosso_summarize,
    randomized_summarize,
    sags_summarize,
    sweg_summarize,
)
from repro.baselines.common import pair_encoding_cost
from repro.exceptions import ConfigurationError, SummaryInvariantError
from repro.graphs import Graph, caveman_graph, complete_bipartite_graph, complete_graph, erdos_renyi_graph


class TestFlatGroupingState:
    def test_initial_state_costs(self):
        graph = complete_graph(4)
        state = FlatGroupingState(graph)
        assert len(state.groups()) == 4
        assert state.total_cost() == graph.num_edges
        assert state.to_summary().cost() == graph.num_edges

    def test_pair_encoding_cost(self):
        assert pair_encoding_cost(0, 10) == 0
        assert pair_encoding_cost(4, 10) == 4
        assert pair_encoding_cost(9, 10) == 2

    def test_merge_updates_counters(self):
        graph = complete_bipartite_graph(2, 3)
        state = FlatGroupingState(graph)
        left = [state.group_of[0], state.group_of[1]]
        merged = state.merge(left[0], left[1])
        assert state.size(merged) == 2
        assert state.group_adj[merged][state.group_of[2]] == 2
        summary = state.to_summary()
        summary.validate(graph)

    def test_merge_errors(self):
        state = FlatGroupingState(complete_graph(3))
        group = state.group_of[0]
        with pytest.raises(SummaryInvariantError):
            state.merge(group, group)
        with pytest.raises(SummaryInvariantError):
            state.merge(group, 999)

    def test_saving_positive_for_twins(self):
        graph = complete_bipartite_graph(2, 5)
        state = FlatGroupingState(graph)
        assert state.saving(state.group_of[0], state.group_of[1]) > 0

    def test_move_between_groups(self):
        graph = complete_graph(4)
        state = FlatGroupingState(graph)
        target = state.group_of[1]
        state.move(0, target)
        assert state.group_of[0] == target
        assert state.size(target) == 2
        state.to_summary().validate(graph)

    def test_move_to_fresh_singleton(self):
        graph = complete_graph(4)
        state = FlatGroupingState(graph)
        state.merge(state.group_of[0], state.group_of[1])
        fresh = state.move(0, None)
        assert state.size(fresh) == 1
        state.to_summary().validate(graph)

    def test_two_hop_groups(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        state = FlatGroupingState(graph)
        hops = state.two_hop_groups(state.group_of[0])
        assert state.group_of[2] in hops
        assert state.group_of[3] not in hops


class TestOfflineBaselines:
    @pytest.mark.parametrize("method", [randomized_summarize, greedy_summarize])
    def test_navlakha_methods_lossless(self, method, any_small_graph):
        summary = method(any_small_graph) if method is greedy_summarize else method(any_small_graph, seed=0)
        summary.validate(any_small_graph)

    def test_randomized_compresses_cliques(self, small_caveman):
        summary = randomized_summarize(small_caveman, seed=0)
        assert summary.cost_eq11() < small_caveman.num_edges

    def test_greedy_compresses_at_least_as_well_as_singletons(self, small_clique):
        summary = greedy_summarize(small_clique)
        assert summary.cost() <= small_clique.num_edges
        assert summary.num_non_singleton_groups() >= 1

    def test_randomized_max_rounds(self, small_random):
        summary = randomized_summarize(small_random, seed=0, max_rounds=3)
        summary.validate(small_random)

    def test_greedy_max_merges(self, small_clique):
        summary = greedy_summarize(small_clique, max_merges=1)
        summary.validate(small_clique)
        assert summary.num_non_singleton_groups() <= 1


class TestSweg:
    def test_lossless_on_all_graphs(self, any_small_graph):
        summary = sweg_summarize(any_small_graph, iterations=5, seed=0)
        summary.validate(any_small_graph)

    def test_compresses_structured_graphs(self, small_caveman, small_bipartite):
        for graph in (small_caveman, small_bipartite):
            summary = sweg_summarize(graph, iterations=8, seed=0)
            assert summary.cost_eq11() < graph.num_edges

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SwegConfig(iterations=0)
        with pytest.raises(ConfigurationError):
            SwegConfig(max_group_size=1)
        with pytest.raises(ConfigurationError):
            SwegConfig(epsilon=-0.1)
        with pytest.raises(TypeError):
            sweg_summarize(complete_graph(3), SwegConfig(), iterations=3)

    def test_threshold_schedule(self):
        config = SwegConfig(iterations=4)
        assert config.threshold(1) == pytest.approx(0.5)
        assert config.threshold(4) == 0.0

    def test_deterministic_with_seed(self, small_hierarchical):
        first = sweg_summarize(small_hierarchical, iterations=5, seed=3)
        second = sweg_summarize(small_hierarchical, iterations=5, seed=3)
        assert first.cost_eq11() == second.cost_eq11()

    def test_lossy_mode_respects_budget(self, small_caveman):
        lossless = sweg_summarize(small_caveman, iterations=5, seed=0)
        lossy = sweg_summarize(small_caveman, iterations=5, seed=0, epsilon=0.5)
        assert lossy.cost_eq11() <= lossless.cost_eq11()
        rebuilt = lossy.decompress()
        for node in small_caveman.nodes():
            original = set(small_caveman.neighbor_set(node))
            reconstructed = set(rebuilt.neighbor_set(node)) if rebuilt.has_node(node) else set()
            errors = len(original ^ reconstructed)
            assert errors <= max(1, int(0.5 * small_caveman.degree(node))) + 1

    def test_drop_corrections_zero_epsilon_is_noop(self, small_caveman):
        summary = sweg_summarize(small_caveman, iterations=5, seed=0)
        assert drop_corrections(summary, small_caveman, 0.0) == 0


class TestSags:
    def test_lossless(self, any_small_graph):
        summary = sags_summarize(any_small_graph, seed=0)
        summary.validate(any_small_graph)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SagsConfig(signature_length=0)
        with pytest.raises(ConfigurationError):
            SagsConfig(bands=40, signature_length=30)
        with pytest.raises(ConfigurationError):
            SagsConfig(acceptance_probability=0.0)

    def test_merges_duplicate_neighborhood_nodes(self):
        graph = complete_bipartite_graph(6, 3)
        summary = sags_summarize(graph, seed=1, acceptance_probability=1.0)
        assert summary.num_non_singleton_groups() >= 1
        summary.validate(graph)


class TestMosso:
    def test_streaming_matches_graph(self, small_caveman):
        summarizer = MoSSo(seed=0)
        for u, v in small_caveman.edges():
            summarizer.add_edge(u, v)
        summary = summarizer.summary()
        summary.validate(small_caveman)

    def test_edge_deletion(self):
        graph = complete_graph(5)
        summarizer = MoSSo(seed=0)
        for u, v in graph.edges():
            summarizer.add_edge(u, v)
        summarizer.remove_edge(0, 1)
        graph.remove_edge(0, 1)
        summarizer.summary().validate(graph)

    def test_duplicate_insertions_ignored(self):
        summarizer = MoSSo(seed=0)
        summarizer.add_edge(0, 1)
        summarizer.add_edge(0, 1)
        summarizer.add_edge(1, 0)
        assert summarizer.graph.num_edges == 1

    def test_self_loop_ignored(self):
        summarizer = MoSSo(seed=0)
        summarizer.add_edge(2, 2)
        assert summarizer.graph.num_edges == 0

    def test_remove_before_any_insert_is_noop(self):
        summarizer = MoSSo(seed=0)
        summarizer.remove_edge(0, 1)
        assert summarizer.graph.num_edges == 0

    def test_offline_wrapper_lossless(self, small_caveman, small_random):
        for graph in (small_caveman, small_random):
            summary = mosso_summarize(graph, seed=0)
            summary.validate(graph)

    def test_compresses_cliques(self, small_caveman):
        summary = mosso_summarize(small_caveman, seed=0)
        assert summary.cost_eq11() < small_caveman.num_edges

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MossoConfig(escape_probability=1.5)
        with pytest.raises(ConfigurationError):
            MossoConfig(sample_size=0)
        with pytest.raises(ConfigurationError):
            MossoConfig(moves_per_update=0)
        with pytest.raises(TypeError):
            MoSSo(MossoConfig(), seed=1)

    def test_isolated_nodes_covered(self):
        graph = erdos_renyi_graph(10, 0.3, seed=2)
        graph.add_node("isolated")
        summary = mosso_summarize(graph, seed=0)
        summary.validate(graph)
        assert "isolated" in summary.group_of
