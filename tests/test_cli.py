"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graphs import caveman_graph, write_edge_list
from repro.model import load_hierarchical_summary


@pytest.fixture
def edge_list_file(tmp_path):
    graph = caveman_graph(3, 5, 0.1, seed=4)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path, graph


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summarize_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summarize"])

    def test_summarize_accepts_dataset(self):
        arguments = build_parser().parse_args(["summarize", "--dataset", "PR", "--iterations", "3"])
        assert arguments.dataset == "PR"
        assert arguments.iterations == 3


class TestCommands:
    def test_summarize_from_file(self, edge_list_file, tmp_path, capsys):
        path, graph = edge_list_file
        output = tmp_path / "summary.json"
        exit_code = main([
            "summarize", "--input", str(path), "--output", str(output),
            "--iterations", "3", "--seed", "0",
        ])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "relative_size=" in captured
        loaded = load_hierarchical_summary(output)
        loaded.validate(graph)

    def test_summarize_dataset_with_height_bound(self, capsys):
        exit_code = main([
            "summarize", "--dataset", "CA", "--iterations", "2", "--height-bound", "2",
        ])
        assert exit_code == 0
        assert "cost=" in capsys.readouterr().out

    def test_summarize_no_prune(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main(["summarize", "--input", str(path), "--iterations", "2", "--no-prune"])
        assert exit_code == 0

    def test_compare_command(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main(["compare", "--input", str(path), "--iterations", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for method in ("slugger", "sweg", "mosso", "randomized", "sags"):
            assert method in output

    def test_datasets_command(self, capsys):
        exit_code = main(["datasets"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "PR" in output
        assert "UK-05" in output
