"""Tests for the extended CLI subcommands (compress, stream, lossy, export)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graphs import caveman_graph, write_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    graph = caveman_graph(3, 5, 0.1, seed=4)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path, graph


class TestParser:
    def test_compress_defaults(self):
        arguments = build_parser().parse_args(["compress", "--dataset", "PR"])
        assert arguments.code == "gamma"
        assert arguments.ordering == "bfs"

    def test_stream_mode_choices(self):
        arguments = build_parser().parse_args(["stream", "--dataset", "FA", "--mode", "window"])
        assert arguments.mode == "window"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--dataset", "FA", "--mode", "bogus"])

    def test_lossy_epsilon_is_repeatable(self):
        arguments = build_parser().parse_args(
            ["lossy", "--dataset", "PR", "--epsilon", "0.1", "--epsilon", "0.3"]
        )
        assert arguments.epsilon == [0.1, 0.3]

    def test_export_format_choices(self):
        arguments = build_parser().parse_args(["export", "--dataset", "PR", "--format", "dot"])
        assert arguments.format == "dot"


class TestCompressCommand:
    def test_reports_pipeline_metrics(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main(["compress", "--input", str(path), "--iterations", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "raw_bits_per_edge" in output
        assert "pipeline_ratio" in output

    def test_accepts_alternate_code_and_ordering(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main([
            "compress", "--input", str(path), "--iterations", "2",
            "--code", "delta", "--ordering", "degree",
        ])
        assert exit_code == 0
        assert "code=delta" in capsys.readouterr().out


class TestStreamCommand:
    def test_insertion_stream(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main(["stream", "--input", str(path), "--checkpoints", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "relative_size" in output
        assert "insertion stream" in output

    def test_dynamic_stream(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main([
            "stream", "--input", str(path), "--mode", "dynamic",
            "--deletion-ratio", "0.3", "--checkpoints", "3",
        ])
        assert exit_code == 0
        assert "dynamic stream" in capsys.readouterr().out

    def test_window_stream(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main([
            "stream", "--input", str(path), "--mode", "window", "--window", "10",
            "--checkpoints", "2",
        ])
        assert exit_code == 0
        assert "window stream" in capsys.readouterr().out


class TestLossyCommand:
    def test_default_epsilon_sweep(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main(["lossy", "--input", str(path), "--iterations", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "epsilon" in output
        assert "max_relative_error" in output

    def test_explicit_epsilons(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main([
            "lossy", "--input", str(path), "--iterations", "2",
            "--epsilon", "0.0", "--epsilon", "0.4",
        ])
        assert exit_code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) >= 4  # Title, header, separator, two data rows.


class TestExportCommand:
    def test_ascii_to_stdout(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        exit_code = main(["export", "--input", str(path), "--iterations", "3"])
        assert exit_code == 0
        assert "subnodes" in capsys.readouterr().out

    def test_dot_to_file(self, edge_list_file, tmp_path, capsys):
        path, _graph = edge_list_file
        output = tmp_path / "summary.dot"
        exit_code = main([
            "export", "--input", str(path), "--format", "dot",
            "--output", str(output), "--iterations", "3",
        ])
        assert exit_code == 0
        text = output.read_text(encoding="utf-8")
        assert text.startswith("graph")
        assert "written to" in capsys.readouterr().out
