"""Tests for colored zero-threshold merge sweeps (repro.core.coloring).

Two guarantees are exercised: the structural one — every class the
greedy coloring emits has pairwise-disjoint footprints, which is what
makes colored decide rounds exact without replay checks — and the
behavioral one — a SLUGGER run whose zero-threshold iterations go
through the colored sweep is bit-identical to the serial reference at
every worker count.  ``REPRO_TEST_WORKERS`` (comma-separated counts)
restricts the sweep for the CI worker-matrix legs.
"""

from __future__ import annotations

import os

import pytest

from repro import ExecutionConfig, Slugger, SluggerConfig
from repro.core.candidates import generate_candidate_sets
from repro.core.coloring import color_classes, colored_apply_sweep, first_color_class
from repro.core.state import SluggerState
from repro.engine import execution
from repro.graphs import caveman_graph, erdos_renyi_graph


def worker_counts():
    env = os.environ.get("REPRO_TEST_WORKERS")
    if env:
        return tuple(int(part) for part in env.split(","))
    return (1, 2, 4)


def slugger_fingerprint(summary):
    return (
        summary.cost(),
        summary.num_p_edges,
        summary.num_n_edges,
        summary.num_h_edges,
        tuple(sorted(map(tuple, summary.p_edges()))),
        tuple(sorted(map(tuple, summary.n_edges()))),
    )


def colored_config(workers: int, **overrides) -> ExecutionConfig:
    """Zero-threshold iterations take the colored path, floors lowered."""
    defaults = dict(workers=workers, shingle_parallel_min_nodes=0,
                    colored_min_class=2, min_parallel_items=2)
    defaults.update(overrides)
    return ExecutionConfig(**defaults)


def separated_communities():
    # Fully separated cliques: candidate groups stay community-local, so
    # the interaction graph is sparse and coloring extracts large classes.
    return caveman_graph(30, 10, 0.0, seed=0)


def sparsely_connected():
    return caveman_graph(40, 8, 0.01, seed=2)


def candidate_groups(graph, seed=0):
    state = SluggerState(graph)
    groups = generate_candidate_sets(
        graph,
        state.summary.hierarchy,
        sorted(state.roots),
        SluggerConfig(iterations=3, seed=seed),
        seed=seed,
        dense=state.dense,
    )
    return state, groups


# ----------------------------------------------------------------------
# Coloring structure
# ----------------------------------------------------------------------
class TestColorClasses:
    @pytest.mark.parametrize("fixture", [separated_communities, sparsely_connected])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_class_has_pairwise_disjoint_footprints(self, fixture, seed):
        state, groups = candidate_groups(fixture(), seed=seed)
        classes = color_classes(state, groups)
        # A partition: every group appears in exactly one class.
        flattened = sorted(index for cls in classes for index in cls)
        assert flattened == list(range(len(groups)))
        for cls in classes:
            footprints = [state.group_footprint(groups[index]) for index in cls]
            for i in range(len(footprints)):
                for j in range(i + 1, len(footprints)):
                    assert footprints[i].isdisjoint(footprints[j]), (
                        f"class members {cls[i]} and {cls[j]} share footprint roots"
                    )

    def test_first_class_matches_running_union_criterion(self):
        state, groups = candidate_groups(separated_communities())
        ready = first_color_class(state, groups)
        assert ready, "separated communities must yield a non-empty first class"
        assert ready[0] == 0  # the first group is always admissible
        ready_set = set(ready)
        footprints = [state.group_footprint(members) for members in groups]
        for index in ready:
            for earlier in range(index):
                assert footprints[index].isdisjoint(footprints[earlier]), (
                    f"ready group {index} overlaps earlier group {earlier}"
                )
        # Completeness: a rejected group overlaps some earlier footprint.
        for index in range(len(groups)):
            if index not in ready_set:
                assert any(
                    not footprints[index].isdisjoint(footprints[earlier])
                    for earlier in range(index)
                )

    def test_classes_cover_interlocking_groups(self):
        # Dense fixture: groups interlock, so multiple classes are needed.
        state, groups = candidate_groups(erdos_renyi_graph(150, 0.08, seed=4))
        classes = color_classes(state, groups)
        assert sum(len(cls) for cls in classes) == len(groups)


# ----------------------------------------------------------------------
# End-to-end determinism
# ----------------------------------------------------------------------
@pytest.mark.skipif(not execution.process_execution_available(),
                    reason="process execution needs the fork start method")
class TestColoredSweepDeterminism:
    @pytest.mark.parametrize("fixture", [separated_communities, sparsely_connected])
    def test_colored_runs_are_bit_identical_across_worker_counts(self, fixture):
        graph = fixture()
        config = SluggerConfig(iterations=5, seed=0)
        fingerprints = {}
        colored_engaged = False
        for workers in worker_counts():
            exe = None if workers == 1 else colored_config(workers)
            result = Slugger(config, execution=exe).summarize(graph)
            fingerprints[workers] = slugger_fingerprint(result.summary)
            if workers > 1 and result.execution_stats["colored_rounds"] > 0:
                colored_engaged = True
        assert len(set(fingerprints.values())) == 1
        if len(worker_counts()) > 1:
            assert colored_engaged, "colored sweep never engaged on a colorable fixture"

    def test_degenerate_coloring_falls_back_and_stays_identical(self):
        # An interlocked fixture: the first class stays below the floor,
        # so zero-threshold iterations fall back to the replay path.
        graph = erdos_renyi_graph(200, 0.05, seed=6)
        config = SluggerConfig(iterations=4, seed=1)
        serial = Slugger(config).summarize(graph)
        parallel = Slugger(
            config, execution=colored_config(2, colored_min_class=10_000)
        ).summarize(graph)
        assert slugger_fingerprint(parallel.summary) == slugger_fingerprint(serial.summary)
        assert parallel.execution_stats["colored_rounds"] == 0

    def test_colored_disabled_preserves_serial_zero_threshold(self):
        graph = separated_communities()
        config = SluggerConfig(iterations=5, seed=0)
        serial = Slugger(config).summarize(graph)
        parallel = Slugger(
            config, execution=colored_config(2, colored_zero_threshold=False)
        ).summarize(graph)
        assert slugger_fingerprint(parallel.summary) == slugger_fingerprint(serial.summary)
        assert parallel.execution_stats["colored_rounds"] == 0

    def test_stats_split_replay_and_serial(self):
        graph = sparsely_connected()
        config = SluggerConfig(iterations=5, seed=3)
        result = Slugger(config, execution=colored_config(2)).summarize(graph)
        stats = result.execution_stats
        assert stats["colored_rounds"] > 0
        assert stats["colored_replayed"] > 0
        # Every zero-threshold group ends up replayed or serially applied.
        assert stats["colored_replayed"] + stats["colored_serial"] <= stats["groups"]


# ----------------------------------------------------------------------
# Sweep unit behavior (serial executor path)
# ----------------------------------------------------------------------
class TestSweepSerialFallback:
    def test_sweep_matches_reference_without_parallel_rounds(self):
        # With workers=1 the sweep cannot run a decide round; everything
        # goes through the serial reference branch and must match a plain
        # reference loop over the same groups and seeds.
        from repro.core.merging import process_candidate_set

        graph = separated_communities()
        config = SluggerConfig(iterations=3, seed=0)
        state_a, groups = candidate_groups(graph)
        state_b = SluggerState(graph)
        seeds = [17 * (index + 1) for index in range(len(groups))]
        stats = {"colored_rounds": 0, "colored_replayed": 0, "colored_serial": 0}
        merges_sweep = colored_apply_sweep(
            state_a, groups, seeds, 0.0, config,
            ExecutionConfig(workers=1), stats,
        )
        merges_reference = sum(
            process_candidate_set(state_b, members, 0.0, config, seed=seeds[index])
            for index, members in enumerate(groups)
        )
        assert merges_sweep == merges_reference
        assert stats["colored_rounds"] == 0
        assert stats["colored_serial"] == len(groups)
        assert slugger_fingerprint(state_a.summary) == slugger_fingerprint(state_b.summary)
