"""Tests for node orderings and the gap-compressed adjacency representation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.adjacency import decode_adjacency, encode_adjacency
from repro.compression.codes import available_codes
from repro.compression.ordering import (
    available_orderings,
    bfs_ordering,
    compute_ordering,
    degree_ordering,
    invert_ordering,
    natural_ordering,
    ordering_locality,
    shingle_ordering,
)
from repro.exceptions import CompressionError
from repro.graphs import (
    Graph,
    barabasi_albert_graph,
    caveman_graph,
    complete_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)


def _random_graph_strategy():
    """Small random edge lists over a bounded node universe."""
    return st.lists(
        st.tuples(st.integers(0, 24), st.integers(0, 24)).filter(lambda pair: pair[0] != pair[1]),
        max_size=80,
    )


class TestOrderings:
    def test_every_scheme_is_a_permutation(self):
        graph = caveman_graph(4, 5, 0.1, seed=0)
        for scheme in available_orderings():
            ordering = compute_ordering(graph, scheme, seed=1)
            assert set(ordering) == set(graph.nodes())
            assert sorted(ordering.values()) == list(range(graph.num_nodes))

    def test_natural_ordering_is_sorted_by_repr(self):
        graph = Graph(edges=[(3, 1), (1, 2)])
        ordering = natural_ordering(graph)
        assert ordering[1] < ordering[2] < ordering[3]

    def test_degree_ordering_puts_hub_first(self):
        graph = star_graph(8)
        ordering = degree_ordering(graph)
        hub = max(graph.nodes(), key=graph.degree)
        assert ordering[hub] == 0

    def test_bfs_ordering_keeps_components_contiguous(self):
        component_a = path_graph(4)
        graph = Graph(edges=list(component_a.edges()) + [(10, 11), (11, 12)])
        ordering = bfs_ordering(graph)
        first_block = {node for node, index in ordering.items() if index < 4}
        assert first_block in ({0, 1, 2, 3}, {10, 11, 12})\
            or len(first_block) == 4  # one component fills the first block

    def test_bfs_ordering_improves_locality_on_path(self):
        graph = path_graph(60)
        natural = ordering_locality(graph, natural_ordering(graph))
        bfs = ordering_locality(graph, bfs_ordering(graph))
        assert bfs <= natural

    def test_shingle_ordering_is_deterministic_per_seed(self):
        graph = barabasi_albert_graph(40, 2, seed=0)
        assert shingle_ordering(graph, seed=5) == shingle_ordering(graph, seed=5)

    def test_unknown_scheme_raises(self):
        with pytest.raises(CompressionError):
            compute_ordering(complete_graph(3), "random-nonsense")

    def test_invert_ordering_round_trip(self):
        graph = caveman_graph(3, 4, 0.0, seed=0)
        ordering = degree_ordering(graph)
        order = invert_ordering(ordering)
        assert all(ordering[node] == index for index, node in enumerate(order))

    def test_invert_ordering_rejects_bad_positions(self):
        with pytest.raises(CompressionError):
            invert_ordering({"a": 0, "b": 2})

    def test_locality_of_empty_graph_is_zero(self):
        graph = Graph(nodes=[1, 2, 3])
        assert ordering_locality(graph, natural_ordering(graph)) == 0.0


class TestCompressedAdjacency:
    @pytest.mark.parametrize("code", ["gamma", "delta", "rice2"])
    @pytest.mark.parametrize("ordering", ["natural", "degree", "bfs", "shingle"])
    def test_round_trip_all_codecs(self, code, ordering):
        graph = caveman_graph(4, 5, 0.15, seed=2)
        compressed = encode_adjacency(graph, code=code, ordering=ordering, seed=3)
        assert decode_adjacency(compressed) == graph

    def test_round_trip_with_isolated_nodes(self):
        graph = Graph(edges=[(0, 1)], nodes=[5, 6])
        compressed = encode_adjacency(graph)
        restored = decode_adjacency(compressed)
        assert restored == graph
        assert set(restored.nodes()) == {0, 1, 5, 6}

    def test_round_trip_empty_graph(self):
        graph = Graph(nodes=[0, 1, 2])
        compressed = encode_adjacency(graph)
        assert decode_adjacency(compressed) == graph
        assert compressed.num_edges == 0
        assert compressed.bits_per_edge() == 0.0

    def test_metadata_fields(self):
        graph = complete_graph(5)
        compressed = encode_adjacency(graph, code="gamma", ordering="degree")
        assert compressed.num_nodes == 5
        assert compressed.num_edges == 10
        assert compressed.code_name == "gamma"
        assert compressed.ordering_scheme == "degree"
        assert compressed.size_bytes() == (compressed.size_bits() + 7) // 8

    def test_bits_per_edge_positive_for_non_empty_graph(self):
        graph = erdos_renyi_graph(30, 0.2, seed=1)
        compressed = encode_adjacency(graph)
        assert compressed.bits_per_edge() > 0

    def test_precomputed_ordering_is_used(self):
        graph = path_graph(6)
        ordering = {node: graph.num_nodes - 1 - node for node in graph.nodes()}
        compressed = encode_adjacency(graph, precomputed_ordering=ordering, ordering="custom")
        assert compressed.ordering_scheme == "custom"
        assert decode_adjacency(compressed) == graph

    def test_precomputed_ordering_must_cover_nodes(self):
        graph = path_graph(4)
        with pytest.raises(CompressionError):
            encode_adjacency(graph, precomputed_ordering={0: 0, 1: 1})

    def test_locality_friendly_ordering_does_not_hurt_much(self):
        graph = barabasi_albert_graph(80, 3, seed=4)
        natural_bits = encode_adjacency(graph, ordering="natural").size_bits()
        bfs_bits = encode_adjacency(graph, ordering="bfs").size_bits()
        # BFS relabeling should not blow up the encoding on a scale-free graph.
        assert bfs_bits <= natural_bits * 1.25

    def test_decoder_detects_truncated_payload(self):
        graph = caveman_graph(3, 4, 0.1, seed=0)
        compressed = encode_adjacency(graph)
        compressed.bit_length = max(1, compressed.bit_length - 16)
        with pytest.raises(CompressionError):
            decode_adjacency(compressed)

    @given(_random_graph_strategy())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, edges):
        graph = Graph.from_edges(edges)
        if graph.num_nodes == 0:
            graph.add_node(0)
        compressed = encode_adjacency(graph, code="gamma", ordering="bfs")
        assert decode_adjacency(compressed) == graph

    @given(_random_graph_strategy(), st.sampled_from(sorted(available_codes())))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property_all_codes(self, edges, code):
        graph = Graph.from_edges(edges)
        graph.add_node(99)
        compressed = encode_adjacency(graph, code=code)
        assert decode_adjacency(compressed) == graph
