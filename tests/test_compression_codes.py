"""Unit and property tests for the bit-level integer codes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bits import BitReader, BitWriter, bits_to_list
from repro.compression.codes import (
    available_codes,
    decode_delta,
    decode_gamma,
    decode_rice,
    decode_unary,
    decode_varint,
    decode_varint_sequence,
    encode_delta,
    encode_gamma,
    encode_rice,
    encode_unary,
    encode_varint,
    encode_varint_sequence,
    get_code,
    zigzag_decode,
    zigzag_encode,
)
from repro.exceptions import CompressionError


class TestBitWriterReader:
    def test_single_bits_round_trip(self):
        writer = BitWriter()
        pattern = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        writer.extend(pattern)
        assert writer.bit_length == len(pattern)
        assert bits_to_list(writer.to_bytes(), writer.bit_length) == pattern

    def test_write_bits_fixed_width(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0, 3)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bits(3) == 0

    def test_write_bit_rejects_non_bit(self):
        with pytest.raises(CompressionError):
            BitWriter().write_bit(2)

    def test_write_bits_rejects_overflow(self):
        with pytest.raises(CompressionError):
            BitWriter().write_bits(8, 3)

    def test_write_bits_rejects_negative(self):
        with pytest.raises(CompressionError):
            BitWriter().write_bits(-1, 4)

    def test_reader_rejects_reading_past_end(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        reader.read_bits(3)
        with pytest.raises(CompressionError):
            reader.read_bit()

    def test_reader_rejects_bad_bit_length(self):
        with pytest.raises(CompressionError):
            BitReader(b"\x00", bit_length=9)

    def test_peek_does_not_consume(self):
        writer = BitWriter()
        writer.write_bits(0b1100, 4)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.peek_bits(2) == 0b11
        assert reader.position == 0
        assert reader.read_bits(4) == 0b1100

    def test_remaining_tracks_position(self):
        writer = BitWriter()
        writer.write_bits(0b10101, 5)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.remaining == 5
        reader.read_bits(2)
        assert reader.remaining == 3

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_bit_round_trip_property(self, bits):
        writer = BitWriter()
        writer.extend(bits)
        assert bits_to_list(writer.to_bytes(), writer.bit_length) == bits


class TestZigZag:
    @pytest.mark.parametrize("value,expected", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)])
    def test_known_values(self, value, expected):
        assert zigzag_encode(value) == expected
        assert zigzag_decode(expected) == value

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_decode_rejects_negative(self):
        with pytest.raises(CompressionError):
            zigzag_decode(-1)


class TestUnaryGammaDeltaRice:
    @pytest.mark.parametrize(
        "encoder,decoder",
        [
            (encode_unary, decode_unary),
            (encode_gamma, decode_gamma),
            (encode_delta, decode_delta),
        ],
    )
    def test_small_values_round_trip(self, encoder, decoder):
        writer = BitWriter()
        values = list(range(20))
        for value in values:
            encoder(writer, value)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert [decoder(reader) for _ in values] == values

    def test_gamma_known_lengths(self):
        # gamma(value) spends 2*floor(log2(value+1)) + 1 bits.
        assert get_code("gamma").encoded_length(0) == 1
        assert get_code("gamma").encoded_length(1) == 3
        assert get_code("gamma").encoded_length(6) == 5

    def test_delta_beats_gamma_for_large_values(self):
        gamma = get_code("gamma")
        delta = get_code("delta")
        assert delta.encoded_length(100_000) < gamma.encoded_length(100_000)

    def test_rice_round_trip_various_parameters(self):
        for k in (0, 1, 3, 5):
            writer = BitWriter()
            values = [0, 1, 2, 7, 63, 100]
            for value in values:
                encode_rice(writer, value, k)
            reader = BitReader(writer.to_bytes(), writer.bit_length)
            assert [decode_rice(reader, k) for _ in values] == values

    def test_negative_values_rejected(self):
        with pytest.raises(CompressionError):
            encode_gamma(BitWriter(), -1)
        with pytest.raises(CompressionError):
            encode_rice(BitWriter(), -1, 2)

    @given(st.lists(st.integers(min_value=0, max_value=2**20), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_mixed_code_sequence_property(self, values):
        # The unary code is excluded here: it spends O(value) bits, so
        # values near 2**20 would dominate the test's runtime.
        for name in ("gamma", "delta", "rice2", "rice4"):
            code = get_code(name)
            writer = BitWriter()
            for value in values:
                code.encode(writer, value)
            reader = BitReader(writer.to_bytes(), writer.bit_length)
            assert [code.decode(reader) for _ in values] == values

    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_unary_sequence_property(self, values):
        code = get_code("unary")
        writer = BitWriter()
        for value in values:
            code.encode(writer, value)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert [code.decode(reader) for _ in values] == values


class TestVarint:
    def test_single_byte_values(self):
        assert encode_varint(0) == b"\x00"
        assert encode_varint(127) == b"\x7f"

    def test_multi_byte_value(self):
        encoded = encode_varint(300)
        assert len(encoded) == 2
        assert decode_varint(encoded) == (300, 2)

    def test_sequence_round_trip(self):
        values = [0, 1, 127, 128, 300, 2**32]
        payload = encode_varint_sequence(values)
        decoded, offset = decode_varint_sequence(payload, len(values))
        assert decoded == values
        assert offset == len(payload)

    def test_truncated_payload_raises(self):
        payload = encode_varint(300)[:1]
        with pytest.raises(CompressionError):
            decode_varint(payload)

    def test_negative_rejected(self):
        with pytest.raises(CompressionError):
            encode_varint(-5)

    @given(st.lists(st.integers(min_value=0, max_value=2**50), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, values):
        payload = encode_varint_sequence(values)
        decoded, offset = decode_varint_sequence(payload, len(values))
        assert decoded == values
        assert offset == len(payload)


class TestCodeRegistry:
    def test_available_codes_contains_standard_codes(self):
        names = available_codes()
        assert {"unary", "gamma", "delta"} <= set(names)

    def test_unknown_code_raises(self):
        with pytest.raises(CompressionError):
            get_code("huffman")

    def test_encoded_length_matches_actual_encoding(self):
        for name in available_codes():
            code = get_code(name)
            writer = BitWriter()
            code.encode(writer, 37)
            assert code.encoded_length(37) == writer.bit_length
