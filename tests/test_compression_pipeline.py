"""Tests for the summarize-then-compress pipeline codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import randomized_summarize, sweg_summarize
from repro.compression.pipeline import (
    compress_flat_summary,
    compress_graph,
    compress_hierarchical_summary,
    compress_summary,
    compression_report,
    decompress_flat_summary,
    decompress_hierarchical_summary,
)
from repro.core import SluggerConfig, summarize
from repro.exceptions import CompressionError
from repro.graphs import Graph, caveman_graph, complete_graph, erdos_renyi_graph, star_graph
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary


def _slugger_summary(graph, seed=0):
    return summarize(graph, SluggerConfig(iterations=5, seed=seed)).summary


class TestCompressGraph:
    def test_round_trip(self):
        graph = caveman_graph(4, 5, 0.1, seed=1)
        compressed = compress_graph(graph, code="delta", ordering="degree")
        assert compressed.decompress() == graph

    def test_bits_per_edge(self):
        graph = complete_graph(6)
        compressed = compress_graph(graph)
        assert compressed.bits_per_edge() == pytest.approx(
            compressed.size_bits() / graph.num_edges
        )


class TestCompressHierarchicalSummary:
    def test_round_trip_represents_same_graph(self):
        graph = caveman_graph(5, 5, 0.1, seed=2)
        summary = _slugger_summary(graph)
        compressed = compress_hierarchical_summary(summary, code="gamma")
        restored = decompress_hierarchical_summary(compressed)
        assert isinstance(restored, HierarchicalSummary)
        assert restored.decompress() == graph
        restored.validate(graph)

    def test_round_trip_preserves_edge_counts(self):
        graph = erdos_renyi_graph(30, 0.15, seed=3)
        summary = _slugger_summary(graph)
        restored = compress_hierarchical_summary(summary).decompress()
        assert restored.num_p_edges == summary.num_p_edges
        assert restored.num_n_edges == summary.num_n_edges
        assert restored.num_h_edges == summary.num_h_edges
        assert restored.cost() == summary.cost()

    def test_trivial_summary_round_trip(self):
        graph = star_graph(6)
        summary = HierarchicalSummary.from_graph(graph)
        restored = compress_hierarchical_summary(summary).decompress()
        assert restored.decompress() == graph

    def test_payload_smaller_than_naive_text(self):
        graph = caveman_graph(6, 6, 0.05, seed=4)
        summary = _slugger_summary(graph)
        compressed = compress_hierarchical_summary(summary)
        # Each superedge/h-edge in a naive listing needs two integers of
        # at least a byte each; the bit encoding should beat that easily.
        naive_bits = 16 * summary.cost()
        assert compressed.size_bits() < naive_bits

    def test_size_bits_matches_metadata(self):
        graph = complete_graph(5)
        summary = _slugger_summary(graph)
        compressed = compress_hierarchical_summary(summary)
        assert compressed.size_bits() == compressed.bit_length
        assert compressed.num_supernodes == len(compressed.supernode_order)

    def test_decoder_detects_truncation(self):
        graph = caveman_graph(3, 4, 0.0, seed=0)
        summary = _slugger_summary(graph)
        compressed = compress_hierarchical_summary(summary)
        compressed.bit_length = max(1, compressed.bit_length // 2)
        with pytest.raises(CompressionError):
            decompress_hierarchical_summary(compressed)

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
                lambda pair: pair[0] != pair[1]
            ),
            min_size=1,
            max_size=40,
        ),
        st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_round_trip_property(self, edges, seed):
        graph = Graph.from_edges(edges)
        summary = _slugger_summary(graph, seed=seed)
        restored = compress_hierarchical_summary(summary).decompress()
        assert restored.decompress() == graph


class TestCompressFlatSummary:
    def test_round_trip_sweg(self):
        graph = caveman_graph(4, 6, 0.1, seed=5)
        summary = sweg_summarize(graph, iterations=5, seed=0)
        restored = compress_flat_summary(summary).decompress()
        assert isinstance(restored, FlatSummary)
        assert restored.decompress() == graph
        restored.validate(graph)

    def test_round_trip_preserves_costs(self):
        graph = erdos_renyi_graph(25, 0.2, seed=6)
        summary = randomized_summarize(graph, seed=1)
        restored = compress_flat_summary(summary, code="delta").decompress()
        assert restored.cost() == summary.cost()
        assert restored.cost_eq11() == summary.cost_eq11()

    def test_singleton_summary_round_trip(self):
        graph = star_graph(5)
        summary = FlatSummary.singletons(graph)
        restored = compress_flat_summary(summary).decompress()
        assert restored.decompress() == graph

    def test_compress_summary_dispatches_by_type(self):
        graph = caveman_graph(3, 4, 0.0, seed=7)
        hierarchical = _slugger_summary(graph)
        flat = sweg_summarize(graph, iterations=3, seed=0)
        assert compress_summary(hierarchical).decompress().decompress() == graph
        assert compress_summary(flat).decompress().decompress() == graph

    def test_compress_summary_rejects_other_types(self):
        with pytest.raises(TypeError):
            compress_summary("not a summary")


class TestCompressionReport:
    def test_report_fields_and_consistency(self):
        graph = caveman_graph(5, 6, 0.05, seed=8)
        summary = _slugger_summary(graph)
        report = compression_report(graph, summary)
        assert report["num_edges"] == graph.num_edges
        assert report["raw_bits"] > 0
        assert report["summary_bits"] > 0
        assert report["pipeline_ratio"] == pytest.approx(
            report["summary_bits"] / report["raw_bits"]
        )

    def test_pipeline_beats_raw_on_highly_compressible_graph(self):
        # A union of cliques is the best case for summarization: one
        # self-looped supernode per clique replaces O(k^2) edges.
        graph = caveman_graph(8, 8, 0.0, seed=9)
        summary = _slugger_summary(graph)
        report = compression_report(graph, summary)
        assert report["pipeline_ratio"] < 1.0

    def test_report_rejects_edgeless_graph(self):
        graph = Graph(nodes=[1, 2])
        summary = HierarchicalSummary.from_graph(graph)
        with pytest.raises(CompressionError):
            compression_report(graph, summary)
