"""Tests for the model-agnostic decompression helpers of :mod:`repro.model.decompress`."""

from __future__ import annotations

from repro.baselines import sweg_summarize
from repro.core import SluggerConfig, summarize
from repro.graphs import Graph, caveman_graph
from repro.model.decompress import partial_neighbors, reconstruct, reconstruction_matches


def _summaries(graph, seed=0):
    hierarchical = summarize(graph, SluggerConfig(iterations=5, seed=seed)).summary
    flat = sweg_summarize(graph, iterations=5, seed=seed)
    return hierarchical, flat


class TestReconstruct:
    def test_both_models_reconstruct_exactly(self):
        graph = caveman_graph(3, 5, 0.1, seed=0)
        for summary in _summaries(graph):
            assert reconstruct(summary) == graph

    def test_reconstruction_matches_true_for_exact_summaries(self):
        graph = caveman_graph(3, 5, 0.1, seed=1)
        for summary in _summaries(graph):
            assert reconstruction_matches(summary, graph)

    def test_reconstruction_matches_false_for_wrong_graph(self):
        graph = caveman_graph(3, 5, 0.1, seed=2)
        other = graph.copy()
        removable = next(iter(other.edges()))
        other.remove_edge(*removable)
        hierarchical, flat = _summaries(graph)
        assert not reconstruction_matches(hierarchical, other)
        assert not reconstruction_matches(flat, other)

    def test_reconstruction_matches_false_for_node_mismatch(self):
        graph = Graph(edges=[(0, 1)])
        bigger = Graph(edges=[(0, 1)], nodes=[2])
        hierarchical, _flat = _summaries(graph)
        assert not reconstruction_matches(hierarchical, bigger)


class TestPartialNeighbors:
    def test_matches_graph_adjacency_for_both_models(self):
        graph = caveman_graph(3, 5, 0.1, seed=3)
        hierarchical, flat = _summaries(graph)
        for node in graph.nodes():
            expected = set(graph.neighbor_set(node))
            assert partial_neighbors(hierarchical, node) == expected
            assert partial_neighbors(flat, node) == expected

    def test_isolated_node_has_no_neighbors(self):
        graph = Graph(edges=[(0, 1)], nodes=[7])
        hierarchical, flat = _summaries(graph)
        assert partial_neighbors(hierarchical, 7) == set()
        assert partial_neighbors(flat, 7) == set()
