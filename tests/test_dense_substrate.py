"""Tests for the dense integer-graph substrate (NodeIndex / DenseAdjacency / CSR)."""

from __future__ import annotations

import pytest

from repro.core.shingles import (
    DenseShingleCache,
    ShingleCache,
    dense_subnode_shingles,
    make_hash_function,
    subnode_shingles,
)
from repro.core.state import SluggerState
from repro.exceptions import InvalidGraphError
from repro.graphs import CSRAdjacency, DenseAdjacency, Graph, NodeIndex, caveman_graph
from repro.graphs.dense import graph_adjacency_bytes


class TestNodeIndex:
    def test_interning_assigns_contiguous_ids(self):
        index = NodeIndex()
        assert index.intern("a") == 0
        assert index.intern("b") == 1
        assert index.intern("a") == 0  # idempotent
        assert len(index) == 2
        assert index.label_of(1) == "b"
        assert index.id_of("b") == 1
        assert "a" in index and "c" not in index
        assert list(index) == ["a", "b"]

    def test_from_graph_follows_insertion_order(self):
        graph = Graph(edges=[(5, 3), (3, 9)])
        index = NodeIndex.from_graph(graph)
        assert [index.label_of(i) for i in range(3)] == [5, 3, 9]

    def test_get_returns_default_for_unknown(self):
        index = NodeIndex(["x"])
        assert index.get("x") == 0
        assert index.get("y") is None
        assert index.get("y", -1) == -1

    def test_id_of_unknown_raises(self):
        with pytest.raises(KeyError):
            NodeIndex().id_of("missing")


class TestDenseAdjacency:
    def test_mirrors_graph(self):
        graph = caveman_graph(4, 5, 0.05, seed=3)
        dense = DenseAdjacency.from_graph(graph)
        labels = dense.index.labels()
        assert dense.num_nodes == graph.num_nodes
        assert dense.num_edges == graph.num_edges
        for node_id, label in enumerate(labels):
            mapped = {labels[other] for other in dense.neighbors[node_id]}
            assert mapped == set(graph.neighbor_set(label))
            assert dense.degrees[node_id] == graph.degree(label)

    def test_float_labels_equal_to_their_index_are_still_translated(self):
        # 0.0 == 0 but the identity fast path must not leak float labels
        # into the int-id neighbor sets.
        graph = Graph(edges=[(0.0, 1.0), (1.0, 2.0)])
        dense = DenseAdjacency.from_graph(graph)
        for neighbors in dense.neighbors:
            assert all(type(v) is int for v in neighbors)
        shingles = dense_subnode_shingles(dense, make_hash_function(3))
        assert len(shingles) == 3

    def test_mirrors_graph_with_arbitrary_labels(self):
        graph = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        dense = DenseAdjacency.from_graph(graph)
        labels = dense.index.labels()
        assert sorted(labels) == ["a", "b", "c"]
        a = dense.index.id_of("a")
        assert {labels[v] for v in dense.neighbors[a]} == {"b", "c"}

    def test_mutation_maintains_degrees_and_counts(self):
        dense = DenseAdjacency(NodeIndex(range(4)))
        assert dense.add_edge(0, 1)
        assert not dense.add_edge(1, 0)  # duplicate
        assert dense.add_edge(1, 2)
        assert dense.num_edges == 2
        assert list(dense.degrees) == [1, 2, 1, 0]
        assert dense.remove_edge(0, 1)
        assert not dense.remove_edge(0, 1)
        assert dense.num_edges == 1
        assert list(dense.degrees) == [0, 1, 1, 0]

    def test_self_loop_rejected(self):
        dense = DenseAdjacency(NodeIndex(range(2)))
        with pytest.raises(InvalidGraphError):
            dense.add_edge(1, 1)

    def test_add_node_grows_arrays(self):
        dense = DenseAdjacency()
        u = dense.add_node("u")
        v = dense.add_node("v")
        dense.add_edge(u, v)
        assert dense.num_nodes == 2
        assert dense.degrees[u] == 1

    def test_edge_ids_yields_each_edge_once(self):
        graph = caveman_graph(3, 4, seed=1)
        dense = DenseAdjacency.from_graph(graph)
        edges = list(dense.edge_ids())
        assert len(edges) == graph.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_to_graph_roundtrip(self):
        graph = caveman_graph(3, 5, 0.1, seed=2)
        rebuilt = DenseAdjacency.from_graph(graph).to_graph()
        assert rebuilt == graph


class TestCSRAdjacency:
    def test_freeze_matches_dense(self):
        graph = caveman_graph(4, 4, 0.1, seed=5)
        dense = DenseAdjacency.from_graph(graph)
        csr = dense.freeze()
        assert isinstance(csr, CSRAdjacency)
        assert csr.num_nodes == dense.num_nodes
        assert csr.num_edges == dense.num_edges
        for node_id in range(dense.num_nodes):
            run = list(csr.neighbors_of(node_id))
            assert run == sorted(dense.neighbors[node_id])
            assert csr.degree(node_id) == dense.degrees[node_id]
        assert list(csr.edge_ids()) == sorted(dense.edge_ids())

    def test_has_edge_binary_search(self):
        dense = DenseAdjacency(NodeIndex(range(5)))
        dense.add_edge(0, 3)
        dense.add_edge(0, 1)
        csr = dense.freeze()
        assert csr.has_edge(0, 1) and csr.has_edge(3, 0)
        assert not csr.has_edge(0, 2) and not csr.has_edge(1, 3)

    def test_csr_is_smaller_than_dict_of_sets(self):
        graph = caveman_graph(20, 10, 0.05, seed=1)
        dense = DenseAdjacency.from_graph(graph)
        csr = dense.freeze()
        assert csr.approx_bytes() < 0.7 * graph_adjacency_bytes(graph)


class TestDenseShingles:
    def test_dense_shingles_match_label_shingles(self):
        graph = caveman_graph(5, 6, 0.1, seed=9)
        dense = DenseAdjacency.from_graph(graph)
        labels = dense.index.labels()
        hash_function = make_hash_function(123)
        by_label = subnode_shingles(graph, make_hash_function(123))
        by_id = dense_subnode_shingles(dense, hash_function)
        assert all(by_label[labels[i]] == by_id[i] for i in range(len(labels)))

    def test_dense_cache_lazy_matches_bulk(self):
        graph = caveman_graph(4, 5, 0.1, seed=2)
        dense = DenseAdjacency.from_graph(graph)
        lazy = DenseShingleCache(dense, seed=7)
        bulk = DenseShingleCache(dense, seed=7)
        full = bulk.ensure_shingles()
        assert [lazy.shingle(i) for i in range(dense.num_nodes)] == list(full)

    def test_dense_cache_matches_label_cache(self):
        graph = Graph(edges=[("x", "y"), ("y", "z"), ("x", "w")])
        dense = DenseAdjacency.from_graph(graph)
        labels = dense.index.labels()
        label_cache = ShingleCache(graph, seed=11)
        dense_cache = DenseShingleCache(dense, seed=11)
        for node_id, label in enumerate(labels):
            assert dense_cache.shingle(node_id) == label_cache.shingle(label)


class TestStateSubstrate:
    def test_state_ids_match_leaf_ids(self):
        graph = caveman_graph(3, 6, 0.05, seed=4)
        state = SluggerState(graph)
        assert state.dense is not None
        state.check_consistency()  # includes the dense id == leaf id check

    def test_label_fallback_state_has_no_dense(self):
        graph = caveman_graph(2, 4, seed=0)
        state = SluggerState(graph, build_dense=False)
        assert state.dense is None
        state.check_consistency()
