"""Tests for the ``repro.devtools`` static analyzer.

Each rule gets must-flag / must-not-flag fixture trees (written to
``tmp_path`` so module names and package scoping behave exactly as in a
real checkout); the framework-level tests cover suppressions, the
baseline round trip, the ``--json`` schema, and the CLI's exit codes.
The final test runs the analyzer over the live tree — the repository's
contract is that ``src/repro`` plus ``tests`` stays at zero
unsuppressed findings.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools.baseline import load_baseline, write_baseline
from repro.devtools.callgraph import build_call_graph
from repro.devtools.framework import Project, SourceModule, all_rules, lint_paths
from repro.devtools.lint import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, run_lint
from repro.exceptions import LintError

REPO_ROOT = Path(__file__).resolve().parents[1]

RULES = {rule.id: rule for rule in all_rules()}


def write_tree(tmp_path: Path, files: dict) -> Path:
    for relpath, text in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def lint_tree(tmp_path: Path, files: dict, rules=None, baseline_keys=None):
    root = write_tree(tmp_path, files)
    selected = None if rules is None else [RULES[rule_id] for rule_id in rules]
    return lint_paths([root], root=root, rules=selected, baseline_keys=baseline_keys)


def finding_rules(report):
    return [finding.rule for finding in report.findings]


# ----------------------------------------------------------------------
# Determinism rules
# ----------------------------------------------------------------------
class TestWallClockRule:
    def test_flags_time_time(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import time
                def f():
                    return time.time()
            """,
        }, rules=["wall-clock"])
        assert finding_rules(report) == ["wall-clock"]

    def test_flags_aliased_and_from_imports(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import time as clock
                from time import time as now
                def f():
                    return clock.time() + now()
            """,
        }, rules=["wall-clock"])
        assert finding_rules(report) == ["wall-clock", "wall-clock"]

    def test_ignores_perf_counter_and_foreign_time_attr(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import time
                def f(row):
                    return time.perf_counter(), time.monotonic(), row.time
            """,
        }, rules=["wall-clock"])
        assert report.clean


class TestGlobalRngRule:
    def test_flags_module_level_random_calls(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import random
                from random import shuffle
                def f(items):
                    shuffle(items)
                    return random.random()
            """,
        }, rules=["global-rng"])
        assert finding_rules(report) == ["global-rng", "global-rng"]

    def test_allows_seeded_generator_construction(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import random
                from random import Random
                def f(seed):
                    return Random(seed), random.Random(seed)
            """,
        }, rules=["global-rng"])
        assert report.clean

    def test_flags_numpy_global_namespace(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import numpy as np
                def f():
                    return np.random.rand()
            """,
        }, rules=["global-rng"])
        assert finding_rules(report) == ["global-rng"]

    def test_rng_helper_module_is_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/utils/__init__.py": "",
            "repro/utils/rng.py": """
                import random
                def ensure_rng(seed):
                    if seed is None:
                        return random.Random(random.random())
                    return random.Random(seed)
            """,
        }, rules=["global-rng"])
        assert report.clean


class TestBuiltinHashRule:
    def test_flags_builtin_hash(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                def f(label):
                    return hash(label)
            """,
        }, rules=["builtin-hash"])
        assert finding_rules(report) == ["builtin-hash"]

    def test_rebound_hash_is_not_the_builtin(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                def hash(value):
                    return 7
                def f(label):
                    return hash(label)
            """,
        }, rules=["builtin-hash"])
        assert report.clean


class TestUnorderedIterationRule:
    def test_flags_output_shapes_in_scoped_packages(self, tmp_path):
        report = lint_tree(tmp_path, {
            "core/__init__.py": "",
            "core/mod.py": """
                def f(d, out):
                    a = list({3, 1, 2})
                    out.extend(d.values())
                    b = [x + 1 for x in set(d)]
                    for key in d.keys():
                        out.append(key)
                    return a, b
            """,
        }, rules=["unordered-iter"])
        assert finding_rules(report) == ["unordered-iter"] * 4

    def test_sorted_and_aggregations_are_safe(self, tmp_path):
        report = lint_tree(tmp_path, {
            "baselines/__init__.py": "",
            "baselines/mod.py": """
                def f(d):
                    a = sorted({3, 1, 2})
                    b = sum(len(v) for v in d.values())
                    c = sorted(list({1, 2}))
                    live = set(d.keys())
                    return a, b, c, live
            """,
        }, rules=["unordered-iter"])
        assert report.clean

    def test_out_of_scope_packages_are_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {
            "experiments/__init__.py": "",
            "experiments/mod.py": """
                def f(d):
                    return list(set(d))
            """,
        }, rules=["unordered-iter"])
        assert report.clean


# ----------------------------------------------------------------------
# Concurrency rules
# ----------------------------------------------------------------------
WORKER_FIXTURE = {
    "pkg/__init__.py": "",
    "pkg/work.py": """
        import threading

        _CACHE_LOCK = threading.Lock()
        _COUNT = 0

        def driver(executor, payloads):
            return list(executor.map_shards(shard_worker, payloads))

        def shard_worker(payload):
            return _helper(payload)

        def _helper(payload):
            global _COUNT
            with _CACHE_LOCK:
                _COUNT += 1
            return payload

        def untangled(payload):
            with _CACHE_LOCK:
                return payload
    """,
}


class TestWorkerLockRule:
    def test_flags_lock_and_global_in_reachable_code_only(self, tmp_path):
        report = lint_tree(tmp_path, dict(WORKER_FIXTURE), rules=["worker-lock"])
        # _helper is worker-reachable: one lock acquisition + one global
        # mutation.  ``untangled`` also takes the lock but is not
        # reachable from any map_shards registration, so it is clean.
        assert finding_rules(report) == ["worker-lock", "worker-lock"]
        assert all(f.path.endswith("work.py") for f in report.findings)
        chains = [f.message for f in report.findings]
        assert any("shard_worker -> _helper" in message for message in chains)

    def test_callgraph_reachability(self, tmp_path):
        root = write_tree(tmp_path, dict(WORKER_FIXTURE))
        module = SourceModule(root / "pkg" / "work.py", root)
        project = Project([module], root)
        graph = build_call_graph(project)
        assert "pkg.work:shard_worker" in graph.entry_points
        reachable = graph.reachable()
        assert "pkg.work:_helper" in reachable
        assert "pkg.work:driver" not in reachable
        assert "pkg.work:untangled" not in reachable
        chain = graph.chain("pkg.work:_helper")
        assert chain[0] == "pkg.work:shard_worker"
        assert chain[-1] == "pkg.work:_helper"


class TestSnapshotMutationRule:
    def test_flags_mutating_calls_on_snapshot_receivers(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                def simulate(snapshot, a, b):
                    snapshot.merge(a, b)
                    return snapshot.roots

                def annotated(view: "StateSnapshot"):
                    view.prune()
            """,
        }, rules=["snapshot-mutation"])
        assert finding_rules(report) == ["snapshot-mutation"] * 2

    def test_reads_are_fine(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                def simulate(snapshot, a, b):
                    footprint = snapshot.group_footprint([a, b])
                    return snapshot.pn_total, footprint
            """,
        }, rules=["snapshot-mutation"])
        assert report.clean


class TestForkUnderLockRule:
    def test_flags_forking_inside_lock_body(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                def ensure_pool(self):
                    with self._lock:
                        if self._pool is None:
                            self._pool = ProcessPoolExecutor(max_workers=2)
                            self._pool_proxy.prestart()
            """,
        }, rules=["fork-under-lock"])
        assert finding_rules(report) == ["fork-under-lock"] * 2

    def test_forking_outside_lock_is_fine(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                def ensure_pool(self):
                    with self._lock:
                        needed = self._pool is None
                    if needed:
                        pool = ProcessPoolExecutor(max_workers=2)
                        pool.prestart()
            """,
        }, rules=["fork-under-lock"])
        assert report.clean


# ----------------------------------------------------------------------
# Hygiene rules
# ----------------------------------------------------------------------
class TestAllConsistencyRule:
    def test_missing_undeclared_and_drifted(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/missing.py": """
                def api():
                    return 1
            """,
            "pkg/drifted.py": """
                __all__ = ["gone"]
                def present():
                    return 1
            """,
        }, rules=["all-consistency"])
        rules = finding_rules(report)
        assert rules.count("all-consistency") == 3  # no __all__, 'gone', 'present'

    def test_exact_dynamic_private_and_script_modules(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/exact.py": """
                from os.path import join
                __all__ = ["api", "join"]
                def api():
                    return join("a", "b")
            """,
            "pkg/dynamic.py": """
                __all__ = sorted(name for name in dir() if not name.startswith("_"))
                def api():
                    return 1
            """,
            "pkg/_private.py": """
                def helper():
                    return 1
            """,
            "script.py": """
                def main():
                    return 0
            """,
        }, rules=["all-consistency"])
        assert report.clean


class TestRaiseTaxonomyRule:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/exceptions.py": """
            class PkgError(Exception):
                pass
        """,
    }

    def test_flags_stray_stdlib_raise(self, tmp_path):
        files = dict(self.FILES)
        files["pkg/mod.py"] = """
            from pkg.exceptions import PkgError
            def f(flag):
                if flag:
                    raise RuntimeError("stray")
                raise PkgError("typed")
        """
        report = lint_tree(tmp_path, files, rules=["raise-taxonomy"])
        assert finding_rules(report) == ["raise-taxonomy"]
        assert "RuntimeError" in report.findings[0].message

    def test_validation_protocol_and_reraise_allowances(self, tmp_path):
        files = dict(self.FILES)
        files["pkg/mod.py"] = """
            def f(value):
                if value < 0:
                    raise ValueError("bad value")
                if not isinstance(value, int):
                    raise TypeError("bad type")

            class Table:
                def __getitem__(self, key):
                    raise KeyError(key)

            def g(stored):
                raise stored
        """
        report = lint_tree(tmp_path, files, rules=["raise-taxonomy"])
        assert report.clean

    def test_modules_outside_the_package_are_not_governed(self, tmp_path):
        files = dict(self.FILES)
        files["test_helper.py"] = """
            def boom():
                raise RuntimeError("harness failure")
        """
        report = lint_tree(tmp_path, files, rules=["raise-taxonomy"])
        assert report.clean


class TestStalenessGuardRule:
    def test_flags_ad_hoc_comparison(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                def check(graph, stamp):
                    return graph.mutation_count != stamp
            """,
        }, rules=["staleness-guard"])
        assert finding_rules(report) == ["staleness-guard"]

    def test_helper_module_is_the_sanctioned_home(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/graphs/__init__.py": "",
            "pkg/graphs/staleness.py": """
                __all__ = ["stamp_is_stale"]
                def stamp_is_stale(graph, stamp):
                    return graph.mutation_count != stamp
            """,
        }, rules=["staleness-guard"])
        assert report.clean


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_suppression_with_reason(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import time
                def f():
                    return time.time()  # repro-lint: disable=wall-clock (test needs wall time)
            """,
        }, rules=["wall-clock"])
        assert report.clean
        assert [f.rule for f in report.suppressed] == ["wall-clock"]

    def test_standalone_comment_attaches_to_next_code_line(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import time
                def f():
                    # repro-lint: disable=wall-clock (timestamping, not measurement)
                    return time.time()
            """,
        }, rules=["wall-clock"])
        assert report.clean and len(report.suppressed) == 1

    def test_reason_is_mandatory(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import time
                def f():
                    return time.time()  # repro-lint: disable=wall-clock
            """,
        }, rules=["wall-clock"])
        assert finding_rules(report) == ["wall-clock"]
        assert not report.suppressed

    def test_wildcard_and_multi_rule_lists(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import time
                def f(label):
                    a = time.time()  # repro-lint: disable=wall-clock,builtin-hash (both known)
                    b = hash(label)  # repro-lint: disable=* (fixture line)
                    return a, b
            """,
        }, rules=["wall-clock", "builtin-hash"])
        assert report.clean and len(report.suppressed) == 2

    def test_suppressing_one_rule_keeps_the_other(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """
                import time
                def f():
                    return time.time()  # repro-lint: disable=builtin-hash (wrong rule)
            """,
        }, rules=["wall-clock"])
        assert finding_rules(report) == ["wall-clock"]


# ----------------------------------------------------------------------
# Baseline, report schema, CLI
# ----------------------------------------------------------------------
DIRTY = {
    "mod.py": """
        import time
        def f():
            return time.time()
    """,
}


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, tmp_path):
        report = lint_tree(tmp_path / "tree", dict(DIRTY), rules=["wall-clock"])
        assert not report.clean
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        keys = load_baseline(baseline_path)
        assert keys == {finding.key() for finding in report.findings}

        again = lint_tree(tmp_path / "tree", {}, rules=["wall-clock"],
                          baseline_keys=keys)
        assert again.clean
        assert [f.rule for f in again.baselined] == ["wall-clock"]

    def test_baseline_keys_survive_line_drift(self, tmp_path):
        report = lint_tree(tmp_path / "tree", dict(DIRTY), rules=["wall-clock"])
        keys = {finding.key() for finding in report.findings}
        shifted = {
            "mod.py": """
                import time

                PAD = 1


                def f():
                    return time.time()
            """,
        }
        again = lint_tree(tmp_path / "shifted", shifted, rules=["wall-clock"],
                          baseline_keys=keys)
        assert again.clean and len(again.baselined) == 1

    def test_missing_baseline_is_empty_and_malformed_raises(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(LintError):
            load_baseline(bad)


class TestReportSchema:
    def test_json_document_shape(self, tmp_path):
        report = lint_tree(tmp_path, dict(DIRTY), rules=["wall-clock"])
        document = report.to_dict()
        assert document["version"] == 1
        assert document["clean"] is False
        assert document["checked_files"] == 1
        assert document["counts"] == {"findings": 1, "suppressed": 0, "baselined": 0}
        assert document["rules"] == [
            {"id": "wall-clock", "category": "determinism",
             "rationale": RULES["wall-clock"].rationale}
        ]
        (finding,) = document["findings"]
        assert set(finding) == {"rule", "path", "line", "column", "message", "snippet"}
        assert finding["path"] == "mod.py"
        json.dumps(document)  # must be JSON-serializable as-is

    def test_unknown_rule_filter_raises(self, tmp_path):
        write_tree(tmp_path, dict(DIRTY))
        with pytest.raises(LintError, match="unknown rule"):
            run_lint([str(tmp_path)], rule_filter=["no-such-rule"])


class TestCommandLine:
    def run_cli(self, *args, module="repro.devtools.lint"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", module, *args],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
        )

    def test_exit_codes(self, tmp_path):
        clean = write_tree(tmp_path / "clean", {"mod.py": "x = 1\n"})
        dirty = write_tree(tmp_path / "dirty", dict(DIRTY))
        assert self.run_cli(str(clean)).returncode == EXIT_CLEAN
        assert self.run_cli(str(dirty)).returncode == EXIT_FINDINGS
        assert self.run_cli(str(tmp_path / "nowhere")).returncode == EXIT_ERROR

    def test_json_flag_emits_schema_document(self, tmp_path):
        dirty = write_tree(tmp_path, dict(DIRTY))
        result = self.run_cli(str(dirty), "--json")
        assert result.returncode == EXIT_FINDINGS
        document = json.loads(result.stdout)
        assert document["version"] == 1 and document["counts"]["findings"] >= 1

    def test_update_baseline_then_clean(self, tmp_path):
        dirty = write_tree(tmp_path, dict(DIRTY))
        baseline = tmp_path / "baseline.json"
        first = self.run_cli(str(dirty), "--baseline", str(baseline),
                             "--update-baseline")
        assert first.returncode == EXIT_CLEAN
        second = self.run_cli(str(dirty), "--baseline", str(baseline))
        assert second.returncode == EXIT_CLEAN

    def test_main_cli_lint_subcommand_forwards(self, tmp_path):
        dirty = write_tree(tmp_path, dict(DIRTY))
        result = self.run_cli("lint", str(dirty), "--json", module="repro.cli")
        assert result.returncode == EXIT_FINDINGS
        assert json.loads(result.stdout)["version"] == 1


# ----------------------------------------------------------------------
# The live tree
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_src_and_tests_have_zero_unsuppressed_findings(self):
        report = run_lint(
            [str(REPO_ROOT / "src" / "repro"), str(REPO_ROOT / "tests")],
            root=str(REPO_ROOT),
            baseline_path=str(REPO_ROOT / "lint-baseline.json"),
        )
        details = "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in report.findings
        )
        assert report.clean, f"unsuppressed lint findings:\n{details}"

    def test_committed_baseline_is_empty(self):
        assert load_baseline(REPO_ROOT / "lint-baseline.json") == set()

    def test_every_live_suppression_carries_a_reason(self):
        report = run_lint([str(REPO_ROOT / "src" / "repro")])
        # Suppressed findings imply a parsed (reason) — the malformed
        # form is inert by construction; meta-check a few known sites.
        assert len(report.suppressed) >= 10
        suppressed_rules = {finding.rule for finding in report.suppressed}
        assert "builtin-hash" in suppressed_rules
        assert "worker-lock" in suppressed_rules
        assert "fork-under-lock" in suppressed_rules
