"""Unit tests for the memoized local encoder used by SLUGGER's merging step."""

from __future__ import annotations

import pytest

from repro.core.encoder import (
    Panel,
    apply_cross_plan,
    apply_intra_plan,
    count_edges_between,
    count_edges_within,
    memo_table_sizes,
    missing_pairs_between,
    missing_pairs_within,
    plan_cross_encoding,
    plan_intra_encoding,
    present_pairs_between,
    present_pairs_within,
)
from repro.graphs import Graph, complete_bipartite_graph, complete_graph
from repro.model import Hierarchy, HierarchicalSummary


def _two_group_hierarchy(graph, left, right):
    """Build a hierarchy with two root supernodes over the given node sets."""
    hierarchy = Hierarchy()
    leaves = {node: hierarchy.add_leaf(node) for node in graph.nodes()}
    root_left = hierarchy.create_parent([leaves[node] for node in left]) if len(left) > 1 else leaves[left[0]]
    root_right = hierarchy.create_parent([leaves[node] for node in right]) if len(right) > 1 else leaves[right[0]]
    return hierarchy, root_left, root_right


class TestBlockCounting:
    def test_count_edges_between(self):
        graph = complete_bipartite_graph(2, 3)
        hierarchy, left, right = _two_group_hierarchy(graph, [0, 1], [2, 3, 4])
        assert count_edges_between(graph, hierarchy, left, right) == 6
        assert len(present_pairs_between(graph, hierarchy, left, right)) == 6
        assert missing_pairs_between(graph, hierarchy, left, right) == []

    def test_count_edges_within(self):
        graph = complete_graph(4)
        graph.remove_edge(0, 1)
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(node) for node in graph.nodes()]
        root = hierarchy.create_parent(leaves)
        assert count_edges_within(graph, hierarchy, root) == 5
        assert len(present_pairs_within(graph, hierarchy, root)) == 5
        missing = missing_pairs_within(graph, hierarchy, root)
        assert [frozenset(pair) for pair in missing] == [frozenset({0, 1})]


class TestCrossPlans:
    def test_complete_bipartite_uses_single_blanket(self):
        graph = complete_bipartite_graph(3, 4)
        hierarchy, left, right = _two_group_hierarchy(graph, [0, 1, 2], [3, 4, 5, 6])
        plan = plan_cross_encoding(graph, hierarchy, Panel(hierarchy, left), Panel(hierarchy, right))
        assert plan.cost == 1
        assert len(plan.superedges) == 1
        assert plan.superedges[0][2] == 1

    def test_empty_cross_costs_nothing(self):
        graph = Graph(nodes=[0, 1, 2, 3])
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        hierarchy, left, right = _two_group_hierarchy(graph, [0, 1], [2, 3])
        plan = plan_cross_encoding(graph, hierarchy, Panel(hierarchy, left), Panel(hierarchy, right))
        assert plan.cost == 0
        assert plan.superedges == []

    def test_sparse_cross_uses_leaf_edges(self):
        graph = Graph(nodes=[0, 1, 2, 3])
        graph.add_edge(0, 2)
        hierarchy, left, right = _two_group_hierarchy(graph, [0, 1], [2, 3])
        plan = plan_cross_encoding(graph, hierarchy, Panel(hierarchy, left), Panel(hierarchy, right))
        assert plan.cost == 1
        assert plan.superedges == []
        assert plan.positive_blocks  # The present pair is listed at leaf level.

    def test_plan_application_is_lossless(self):
        graph = complete_bipartite_graph(3, 3)
        graph.remove_edge(0, 5)
        hierarchy, left, right = _two_group_hierarchy(graph, [0, 1, 2], [3, 4, 5])
        panel_a, panel_b = Panel(hierarchy, left), Panel(hierarchy, right)
        plan = plan_cross_encoding(graph, hierarchy, panel_a, panel_b)
        summary = HierarchicalSummary(hierarchy)
        apply_cross_plan(plan, graph, hierarchy, panel_a, panel_b, summary.add_edge)
        summary.validate(graph)
        assert summary.num_p_edges + summary.num_n_edges == plan.cost

    def test_memo_disabled_gives_same_cost(self):
        graph = complete_bipartite_graph(3, 4)
        graph.remove_edge(0, 4)
        hierarchy, left, right = _two_group_hierarchy(graph, [0, 1, 2], [3, 4, 5, 6])
        panel_a, panel_b = Panel(hierarchy, left), Panel(hierarchy, right)
        with_memo = plan_cross_encoding(graph, hierarchy, panel_a, panel_b, use_memo=True)
        without_memo = plan_cross_encoding(graph, hierarchy, panel_a, panel_b, use_memo=False)
        assert with_memo.cost == without_memo.cost

    def test_memo_statistics_exposed(self):
        statistics = memo_table_sizes()
        assert statistics["cross_entries"] >= 0
        assert "intra_entries" in statistics


class TestIntraPlans:
    def _merged_panel(self, graph, left, right):
        hierarchy = Hierarchy()
        leaves = {node: hierarchy.add_leaf(node) for node in graph.nodes()}
        root_left = hierarchy.create_parent([leaves[node] for node in left])
        root_right = hierarchy.create_parent([leaves[node] for node in right])
        merged = hierarchy.create_parent([root_left, root_right])
        return hierarchy, merged

    def test_clique_becomes_self_loop(self):
        graph = complete_graph(6)
        hierarchy, merged = self._merged_panel(graph, [0, 1, 2], [3, 4, 5])
        plan = plan_intra_encoding(graph, hierarchy, merged, Panel(hierarchy, merged))
        assert plan.cost == 1
        assert plan.superedges == [(merged, merged, 1)]

    def test_near_clique_prefers_corrections(self):
        graph = complete_graph(6)
        graph.remove_edge(0, 3)
        hierarchy, merged = self._merged_panel(graph, [0, 1, 2], [3, 4, 5])
        plan = plan_intra_encoding(graph, hierarchy, merged, Panel(hierarchy, merged))
        assert plan.cost == 2  # Self-loop plus one negative leaf correction.

    def test_intra_plan_application_is_lossless(self):
        graph = complete_graph(6)
        graph.remove_edge(1, 4)
        graph.remove_edge(2, 5)
        hierarchy, merged = self._merged_panel(graph, [0, 1, 2], [3, 4, 5])
        panel = Panel(hierarchy, merged)
        plan = plan_intra_encoding(graph, hierarchy, merged, panel)
        summary = HierarchicalSummary(hierarchy)
        apply_intra_plan(plan, graph, hierarchy, panel, summary.add_edge)
        summary.validate(graph)
        assert summary.num_p_edges + summary.num_n_edges == plan.cost

    def test_bipartite_inside_merged_node(self):
        # Two halves with all edges across and none within: the best intra
        # encoding is a single blanket between the two child parts.
        graph = complete_bipartite_graph(3, 3)
        hierarchy, merged = self._merged_panel(graph, [0, 1, 2], [3, 4, 5])
        plan = plan_intra_encoding(graph, hierarchy, merged, Panel(hierarchy, merged))
        assert plan.cost == 1
        assert len(plan.superedges) == 1
        x, y, sign = plan.superedges[0]
        assert sign == 1
        assert x != y

    def test_memo_disabled_matches(self):
        graph = complete_graph(6)
        graph.remove_edge(0, 3)
        hierarchy, merged = self._merged_panel(graph, [0, 1, 2], [3, 4, 5])
        panel = Panel(hierarchy, merged)
        assert (
            plan_intra_encoding(graph, hierarchy, merged, panel, use_memo=True).cost
            == plan_intra_encoding(graph, hierarchy, merged, panel, use_memo=False).cost
        )


class TestPanel:
    def test_leaf_panel_shape(self):
        hierarchy = Hierarchy()
        leaf = hierarchy.add_leaf("x")
        panel = Panel(hierarchy, leaf)
        assert panel.parts == [leaf]
        assert panel.has_distinct_top is False
        assert panel.endpoints() == [leaf]
        assert panel.endpoint_coverage() == [(0,)]

    def test_internal_panel_shape(self):
        hierarchy = Hierarchy()
        a, b = hierarchy.add_leaf("a"), hierarchy.add_leaf("b")
        top = hierarchy.create_parent([a, b])
        panel = Panel(hierarchy, top)
        assert panel.shape == (2, True)
        assert panel.endpoints()[0] == top
        assert panel.endpoint_coverage()[0] == (0, 1)
