"""Tests for the encoder's structured fallback on panels larger than SLUGGER produces.

The exhaustive pattern search of :mod:`repro.core.encoder` is only used
while the number of blanket slots stays small; wider panels (roots with
three or more direct children, which library users can build directly)
go through the structured candidate family.  These tests pin down that
the fallback stays exact (plans always reproduce the adjacency), picks
the obvious encodings on extreme inputs, and runs fast.
"""

from __future__ import annotations

import time

import pytest

from repro.core.encoder import (
    Panel,
    apply_cross_plan,
    apply_intra_plan,
    plan_cross_encoding,
    plan_intra_encoding,
)
from repro.graphs import Graph, complete_bipartite_graph, complete_graph, erdos_renyi_graph
from repro.model import Hierarchy, HierarchicalSummary


def _wide_two_panel_hierarchy(graph, left_groups, right_groups):
    """A hierarchy with two roots whose children are the given node groups."""
    hierarchy = Hierarchy()
    leaves = {node: hierarchy.add_leaf(node) for node in graph.nodes()}

    def build(groups):
        children = []
        for group in groups:
            if len(group) == 1:
                children.append(leaves[group[0]])
            else:
                children.append(hierarchy.create_parent([leaves[node] for node in group]))
        return hierarchy.create_parent(children)

    return hierarchy, build(left_groups), build(right_groups)


def _wide_merged_hierarchy(graph, groups):
    """A hierarchy with one root whose children are the given node groups."""
    hierarchy = Hierarchy()
    leaves = {node: hierarchy.add_leaf(node) for node in graph.nodes()}
    children = [
        hierarchy.create_parent([leaves[node] for node in group]) if len(group) > 1 else leaves[group[0]]
        for group in groups
    ]
    return hierarchy, hierarchy.create_parent(children)


class TestCrossFallback:
    def test_dense_cross_uses_single_blanket(self):
        # 9 x 8 complete bipartite between two roots with 3 and 4 children:
        # 20 blanket slots, far past the exact-search threshold.
        graph = complete_bipartite_graph(9, 8)
        left_groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        right_groups = [[9, 10], [11, 12], [13, 14], [15, 16]]
        hierarchy, left, right = _wide_two_panel_hierarchy(graph, left_groups, right_groups)
        plan = plan_cross_encoding(graph, hierarchy, Panel(hierarchy, left), Panel(hierarchy, right))
        assert plan.cost == 1
        assert len(plan.superedges) == 1

    def test_empty_cross_costs_nothing(self):
        graph = Graph(nodes=range(17))
        for u, v in ((0, 1), (9, 10)):
            graph.add_edge(u, v)
        left_groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        right_groups = [[9, 10], [11, 12], [13, 14], [15, 16]]
        hierarchy, left, right = _wide_two_panel_hierarchy(graph, left_groups, right_groups)
        plan = plan_cross_encoding(graph, hierarchy, Panel(hierarchy, left), Panel(hierarchy, right))
        assert plan.cost == 0
        assert plan.superedges == []

    def test_fallback_plan_is_lossless_on_random_bipartite_adjacency(self):
        base = erdos_renyi_graph(17, 0.4, seed=3)
        left_groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        right_groups = [[9, 10], [11, 12], [13, 14], [15, 16]]
        left_nodes = {node for group in left_groups for node in group}
        right_nodes = {node for group in right_groups for node in group}
        # Keep only the edges between the two sides: that is the adjacency a
        # cross plan is responsible for reproducing.
        graph = Graph(nodes=range(17))
        for u, v in base.edges():
            if (u in left_nodes) != (v in left_nodes):
                graph.add_edge(u, v)
        hierarchy, left, right = _wide_two_panel_hierarchy(graph, left_groups, right_groups)
        panel_a, panel_b = Panel(hierarchy, left), Panel(hierarchy, right)
        plan = plan_cross_encoding(graph, hierarchy, panel_a, panel_b)
        summary = HierarchicalSummary(hierarchy)
        apply_cross_plan(plan, graph, hierarchy, panel_a, panel_b, summary.add_edge)
        summary.validate(graph)

    def test_fallback_never_worse_than_listing_all_edges(self):
        graph = complete_bipartite_graph(9, 8)
        graph.remove_edge(0, 9)
        graph.remove_edge(3, 11)
        left_groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        right_groups = [[9, 10], [11, 12], [13, 14], [15, 16]]
        hierarchy, left, right = _wide_two_panel_hierarchy(graph, left_groups, right_groups)
        plan = plan_cross_encoding(graph, hierarchy, Panel(hierarchy, left), Panel(hierarchy, right))
        assert plan.cost <= graph.num_edges
        assert plan.cost <= 1 + 2  # blanket plus the two negative corrections

    def test_fallback_is_fast(self):
        graph = complete_bipartite_graph(12, 12)
        left_groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11]]
        right_groups = [[12, 13, 14], [15, 16, 17], [18, 19, 20], [21, 22, 23]]
        hierarchy, left, right = _wide_two_panel_hierarchy(graph, left_groups, right_groups)
        started = time.perf_counter()
        plan = plan_cross_encoding(graph, hierarchy, Panel(hierarchy, left), Panel(hierarchy, right))
        assert time.perf_counter() - started < 2.0
        assert plan.cost == 1


class TestIntraFallback:
    def test_wide_clique_becomes_self_loop(self):
        graph = complete_graph(15)
        groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11], [12, 13, 14]]
        hierarchy, merged = _wide_merged_hierarchy(graph, groups)
        plan = plan_intra_encoding(graph, hierarchy, merged, Panel(hierarchy, merged))
        assert plan.cost == 1
        assert plan.superedges == [(merged, merged, 1)]

    def test_wide_near_clique_stays_lossless(self):
        graph = complete_graph(15)
        graph.remove_edge(0, 7)
        graph.remove_edge(3, 12)
        groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11], [12, 13, 14]]
        hierarchy, merged = _wide_merged_hierarchy(graph, groups)
        panel = Panel(hierarchy, merged)
        plan = plan_intra_encoding(graph, hierarchy, merged, panel)
        summary = HierarchicalSummary(hierarchy)
        apply_intra_plan(plan, graph, hierarchy, panel, summary.add_edge)
        summary.validate(graph)
        assert plan.cost <= 3  # self-loop plus the two negative corrections

    def test_wide_sparse_supernode_lists_edges(self):
        graph = Graph(nodes=range(15))
        graph.add_edge(0, 3)
        graph.add_edge(6, 9)
        groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11], [12, 13, 14]]
        hierarchy, merged = _wide_merged_hierarchy(graph, groups)
        plan = plan_intra_encoding(graph, hierarchy, merged, Panel(hierarchy, merged))
        assert plan.cost == 2
        assert plan.superedges == [] or all(sign == 1 for _, _, sign in plan.superedges)
