"""Equivalence suite for the summarizer engine registry.

Three guarantees are pinned here:

* every registered summarizer produces a valid (lossless) summary on the
  shared fixtures;
* registry dispatch is bit-identical to invoking the underlying
  implementation directly (same seeds → same cost);
* the substrate swap is invisible: SLUGGER with the dense substrate
  disabled matches the default, and all methods reproduce hard-coded
  fingerprints captured on integer-labelled fixtures.
"""

from __future__ import annotations

import pytest

from repro import engine
from repro.analysis.comparison import compare_methods, default_methods
from repro.baselines import (
    greedy_summarize,
    mosso_summarize,
    randomized_summarize,
    sags_summarize,
    sweg_summarize,
)
from repro.core import Slugger, SluggerConfig
from repro.engine.base import EngineResult, Summarizer
from repro.exceptions import ConfigurationError
from repro.graphs import (
    caveman_graph,
    complete_bipartite_graph,
    erdos_renyi_graph,
    nested_partition_graph,
    star_graph,
)

ALL_METHODS = ("slugger", "sweg", "mosso", "randomized", "sags", "greedy")


def fixture_graphs():
    return {
        "caveman": caveman_graph(6, 6, 0.05, seed=7),
        "er": erdos_renyi_graph(120, 0.06, seed=11),
        "bipartite": complete_bipartite_graph(5, 7),
        "nested": nested_partition_graph([3, 3, 4], [0.9, 0.25, 0.05], seed=3),
        "star": star_graph(30),
    }


# Eq.1 / Eq.11-comparable costs captured from direct invocations on the
# fixtures above (iterations=5 for the iterative methods, seed=0).  Any
# drift here means a change was not output-preserving.
FINGERPRINTS = {
    "caveman": {"slugger": 46, "sweg": 50, "mosso": 50, "randomized": 50, "sags": 50, "greedy": 50},
    "er": {"slugger": 419, "sweg": 446, "mosso": 424, "randomized": 434, "sags": 437, "greedy": 423},
    "bipartite": {"slugger": 12, "sweg": 13, "mosso": 35, "randomized": 13, "sags": 14, "greedy": 13},
    "nested": {"slugger": 132, "sweg": 132, "mosso": 211, "randomized": 127, "sags": 222, "greedy": 127},
    "star": {"slugger": 30, "sweg": 31, "mosso": 30, "randomized": 31, "sags": 43, "greedy": 31},
}


def direct_cost(method: str, graph) -> int:
    """Cost from invoking the underlying implementation without the registry."""
    if method == "slugger":
        return Slugger(SluggerConfig(iterations=5, seed=0)).summarize(graph).cost()
    if method == "sweg":
        return sweg_summarize(graph, iterations=5, seed=0).cost_eq11()
    if method == "mosso":
        return mosso_summarize(graph, seed=0).cost_eq11()
    if method == "randomized":
        return randomized_summarize(graph, seed=0).cost_eq11()
    if method == "sags":
        return sags_summarize(graph, seed=0).cost_eq11()
    if method == "greedy":
        return greedy_summarize(graph).cost_eq11()
    raise AssertionError(method)


class TestRegistry:
    def test_all_builtin_methods_registered(self):
        available = engine.available_methods()
        for name in ALL_METHODS:
            assert name in available

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigurationError):
            engine.create("does-not-exist")
        with pytest.raises(ConfigurationError):
            engine.default_suite(methods=["does-not-exist"])

    def test_duplicate_registration_rejected(self):
        class Duplicate(Summarizer):
            name = "slugger"

            def _run(self, graph, seed):  # pragma: no cover - never runs
                raise NotImplementedError

        with pytest.raises(ConfigurationError):
            engine.register(Duplicate)

    def test_default_suite_applies_iterations_to_iterative_methods(self):
        suite = engine.default_suite(iterations=4)
        assert set(suite) == set(engine.DEFAULT_SUITE)
        assert suite["slugger"].options["iterations"] == 4
        assert suite["sweg"].options["iterations"] == 4
        assert "iterations" not in suite["mosso"].options


class TestEquivalence:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("fixture", sorted(FINGERPRINTS))
    def test_registry_matches_direct_invocation_and_fingerprint(self, method, fixture):
        graph = fixture_graphs()[fixture]
        options = {"iterations": 5} if method in ("slugger", "sweg") else {}
        result = engine.run(method, graph, seed=0, **options)
        assert isinstance(result, EngineResult)
        assert result.method == method
        result.summary.validate(graph)  # lossless on every fixture
        assert result.cost() == direct_cost(method, graph)
        assert result.cost() == FINGERPRINTS[fixture][method]
        assert result.runtime_seconds >= 0.0

    @pytest.mark.parametrize("fixture", ["caveman", "nested"])
    def test_dense_substrate_swap_is_bit_identical(self, fixture):
        graph = fixture_graphs()[fixture]
        costs = {}
        for dense in (True, False):
            config = SluggerConfig(iterations=5, seed=0, use_dense_substrate=dense,
                                   check_invariants=True, validate_output=True)
            result = Slugger(config).summarize(graph)
            costs[dense] = (result.cost(), result.summary.num_p_edges,
                            result.summary.num_n_edges, result.summary.num_h_edges)
        assert costs[True] == costs[False]

    def test_summarizer_is_callable_with_legacy_signature(self):
        graph = fixture_graphs()["caveman"]
        summarizer = engine.create("sweg", iterations=5)
        summary = summarizer(graph, 0)
        assert summary.cost_eq11() == FINGERPRINTS["caveman"]["sweg"]

    def test_slugger_history_travels_through_engine(self):
        graph = fixture_graphs()["caveman"]
        result = engine.run("slugger", graph, seed=0, iterations=5)
        assert len(result.history) == 5
        assert result.details["prune_stats"] is not None


class TestComparisonDispatch:
    def test_default_methods_are_registry_summarizers(self):
        methods = default_methods(iterations=3)
        assert set(methods) == set(engine.DEFAULT_SUITE)
        for summarizer in methods.values():
            assert isinstance(summarizer, Summarizer)

    def test_compare_methods_accepts_registry_names(self):
        graph = fixture_graphs()["caveman"]
        results = compare_methods(graph, methods=["randomized", "greedy"], seed=0)
        assert {result.method for result in results} == {"randomized", "greedy"}
        costs = {result.method: result.report["cost"] for result in results}
        assert costs["greedy"] == FINGERPRINTS["caveman"]["greedy"]

    def test_compare_methods_matches_engine_results(self):
        graph = fixture_graphs()["bipartite"]
        results = compare_methods(graph, methods=default_methods(iterations=5), seed=0)
        for result in results:
            assert result.report["cost"] == FINGERPRINTS["bipartite"][result.method]

    def test_compare_methods_supports_legacy_callables(self):
        graph = fixture_graphs()["star"]
        legacy = {"mine": lambda graph, seed: greedy_summarize(graph)}
        (result,) = compare_methods(graph, methods=legacy, seed=0)
        assert result.method == "mine"
        assert result.report["cost"] == FINGERPRINTS["star"]["greedy"]
