"""Tests for the staged phase pipeline and the pluggable executor layer.

The central guarantee exercised here: for a fixed seed, SLUGGER and SWeG
summaries are **bit-identical across worker counts** — the parallel
decide/apply machinery may only move work between the replay and
fallback paths, never change a decision.  On top of that, the suite pins
hard-coded fingerprints (so drift against the serial reference of
earlier PRs is caught), and unit-tests the executor primitives, the
merge-trace encoding, and the read-only state snapshot.
"""

from __future__ import annotations

import sys

import pytest

from repro import ExecutionConfig, Slugger, SluggerConfig, engine
from repro.analysis.comparison import compare_methods
from repro.baselines.sweg import sweg_summarize
from repro.core.merging import (
    apply_merge_trace,
    apply_merges,
    decide_merges,
    process_candidate_set,
)
from repro.core.shingles import (
    DenseShingleCache,
    csr_shingles_range,
    dense_hash_values,
    dense_subnode_shingles,
    make_hash_function,
)
from repro.core.state import SluggerState, StateSnapshot
from repro.engine import execution
from repro.engine.execution import (
    ProcessShardExecutor,
    SerialExecutor,
    executor_for,
    shard_bounds,
)
from repro.exceptions import ConfigurationError
from repro.graphs import DenseAdjacency, Graph, caveman_graph, erdos_renyi_graph

WORKER_COUNTS = (1, 2, 4)

#: Hash randomization changes ``hash(str)`` and therefore the shingle
#: values of string-labelled graphs; the literal string-label pins below
#: were captured under PYTHONHASHSEED=0.
HASHSEED_PINNED = sys.flags.hash_randomization == 0


def int_fixture() -> Graph:
    return caveman_graph(20, 10, 0.05, seed=1)


def er_fixture() -> Graph:
    return erdos_renyi_graph(300, 0.02, seed=5)


def string_fixture() -> Graph:
    return Graph(edges=[(f"v{u}", f"v{v}") for u, v in int_fixture().edges()])


# Captured from serial runs (iterations=5, seed=0; PYTHONHASHSEED=0 for
# the string-labelled fixture).  Any drift means a change was not
# output-preserving.
SLUGGER_PINS = {
    "caveman-int": (332, 133, 7, 192),
    "er-int": (827, 788, 0, 39),
    "caveman-str": (340, 144, 5, 191),
}
SWEG_PINS = {"caveman-int": 327, "er-int": 959, "caveman-str": 325}


def slugger_fingerprint(summary):
    return (
        summary.cost(),
        summary.num_p_edges,
        summary.num_n_edges,
        summary.num_h_edges,
        tuple(sorted(map(tuple, summary.p_edges()))),
        tuple(sorted(map(tuple, summary.n_edges()))),
    )


def parallel_config(workers: int, **overrides) -> ExecutionConfig:
    """An execution config that engages the pool even on small fixtures."""
    defaults = dict(workers=workers, serial_zero_threshold=False,
                    shingle_parallel_min_nodes=0)
    defaults.update(overrides)
    return ExecutionConfig(**defaults)


# ----------------------------------------------------------------------
# Executor primitives
# ----------------------------------------------------------------------
class TestExecutionConfig:
    def test_defaults_are_serial(self):
        config = ExecutionConfig()
        assert config.workers == 1
        assert not config.parallel
        assert config.effective_workers(1000) == 1

    @pytest.mark.parametrize("bad", [
        dict(workers=0), dict(chunks_per_worker=0),
        dict(min_parallel_items=-1), dict(shingle_parallel_min_nodes=-1),
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(**bad)

    def test_effective_workers_respects_item_count(self):
        config = ExecutionConfig(workers=4)
        if not execution.process_execution_available():  # pragma: no cover
            pytest.skip("no fork on this platform")
        assert config.effective_workers(100) == 4
        assert config.effective_workers(3) == 3
        assert config.effective_workers(1) == 1
        assert config.effective_workers(0) == 1

    def test_platforms_without_fork_fall_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(execution, "process_execution_available", lambda: False)
        config = ExecutionConfig(workers=4)
        assert not config.parallel
        assert config.effective_workers(100) == 1
        assert isinstance(executor_for(config, 100), SerialExecutor)
        # A full run with an unusable parallel config still matches serial.
        graph = caveman_graph(6, 5, 0.05, seed=3)
        serial = Slugger(SluggerConfig(iterations=3, seed=0)).summarize(graph)
        fallback = Slugger(SluggerConfig(iterations=3, seed=0),
                           execution=config).summarize(graph)
        assert slugger_fingerprint(serial.summary) == slugger_fingerprint(fallback.summary)
        assert fallback.execution_stats["parallel_iterations"] == 0


class TestShardBounds:
    @pytest.mark.parametrize("total,shards", [(10, 3), (7, 7), (5, 16), (1, 4), (16, 4)])
    def test_bounds_partition_the_range(self, total, shards):
        bounds = shard_bounds(total, shards)
        covered = [i for start, stop in bounds for i in range(start, stop)]
        assert covered == list(range(total))
        assert all(stop > start for start, stop in bounds)
        assert len(bounds) <= max(1, min(shards, total))

    def test_empty_total(self):
        assert shard_bounds(0, 4) == []


class TestExecutors:
    def test_serial_executor_maps_in_order_with_context(self):
        with SerialExecutor(context=10) as executor:
            results = list(executor.map_shards(_add_context, [1, 2, 3]))
        assert results == [11, 12, 13]

    def test_process_executor_matches_serial(self):
        if not execution.process_execution_available():  # pragma: no cover
            pytest.skip("no fork on this platform")
        with ProcessShardExecutor(2, context=100) as executor:
            results = list(executor.map_shards(_add_context, list(range(8))))
        assert results == [100 + i for i in range(8)]


def _add_context(payload):
    return execution.worker_context() + payload


# ----------------------------------------------------------------------
# State snapshot
# ----------------------------------------------------------------------
class TestStateSnapshot:
    def test_snapshot_is_immutable(self):
        state = SluggerState(caveman_graph(4, 5, seed=2))
        snapshot = state.snapshot()
        assert isinstance(snapshot, StateSnapshot)
        with pytest.raises(TypeError):
            snapshot.root_adj[0] = {}
        with pytest.raises(TypeError):
            snapshot.pn_count[0] = {}
        with pytest.raises(TypeError):
            snapshot.pn_total[0] = 5
        with pytest.raises(TypeError):
            del snapshot.tree_h[0]
        with pytest.raises(AttributeError):
            snapshot.roots = frozenset()
        with pytest.raises(AttributeError):
            snapshot.root_adj = {}

    def test_snapshot_reflects_state_without_copying(self):
        state = SluggerState(caveman_graph(4, 5, seed=2))
        snapshot = state.snapshot()
        assert snapshot.roots == frozenset(state.roots)
        some_root = next(iter(state.roots))
        assert snapshot.root_adj[some_root] == state.root_adj[some_root]

    def test_group_footprint_covers_members_and_neighbors(self):
        state = SluggerState(caveman_graph(4, 5, seed=2))
        members = sorted(state.roots)[:5]
        footprint = state.snapshot().group_footprint(members)
        assert footprint == state.group_footprint(members)
        for member in members:
            assert member in footprint
            assert set(state.root_adj[member]) <= footprint
            assert set(state.pn_count[member]) <= footprint


# ----------------------------------------------------------------------
# Merge traces
# ----------------------------------------------------------------------
class TestMergeTrace:
    def test_trace_replay_reproduces_the_serial_merges(self):
        graph = caveman_graph(5, 6, 0.05, seed=4)
        config = SluggerConfig(iterations=3, seed=0)
        recorded = SluggerState(graph)
        members = sorted(recorded.roots)
        trace = []
        merges = process_candidate_set(recorded, members, 0.0, config, seed=123,
                                       trace=trace)
        assert merges == len(trace) > 0
        # Negative codes must reference earlier merges of the same trace.
        for position, (a, b) in enumerate(trace):
            for code in (a, b):
                assert code >= 0 or -code - 1 < position
        replayed = SluggerState(graph)
        assert apply_merge_trace(replayed, trace, config) == merges
        assert slugger_fingerprint(replayed.summary) == slugger_fingerprint(recorded.summary)

    def test_decide_apply_split_matches_one_pass_processing(self):
        graph = caveman_graph(4, 6, 0.05, seed=8)
        config = SluggerConfig(iterations=3, seed=0)
        scratch = SluggerState(graph)  # the disposable decide image
        members = sorted(scratch.roots)
        plan = decide_merges(scratch, members, 0.0, config, seed=77)
        reference = SluggerState(graph)
        process_candidate_set(reference, members, 0.0, config, seed=77)
        applied = SluggerState(graph)
        assert apply_merges(applied, plan, config) == len(plan)
        assert slugger_fingerprint(applied.summary) == slugger_fingerprint(reference.summary)

    def test_no_trace_requested_keeps_legacy_signature(self):
        graph = caveman_graph(3, 4, seed=1)
        state = SluggerState(graph)
        merges = process_candidate_set(state, sorted(state.roots), 0.0,
                                       SluggerConfig(seed=0), seed=5)
        assert merges >= 0


# ----------------------------------------------------------------------
# Batch shingles on the CSR view
# ----------------------------------------------------------------------
class TestCsrShingles:
    def test_range_shingles_match_the_dense_sweep(self):
        graph = caveman_graph(8, 6, 0.1, seed=9)
        dense = DenseAdjacency.from_graph(graph)
        csr = dense.freeze()
        hash_function = make_hash_function(42)
        expected = dense_subnode_shingles(dense, hash_function)
        values = dense_hash_values(dense, hash_function)
        n = dense.num_nodes
        for shards in (1, 3, 5):
            combined = []
            for start, stop in shard_bounds(n, shards):
                combined.extend(csr_shingles_range(csr, values, start, stop))
            assert combined == expected

    def test_preseeded_cache_serves_the_batch_values(self):
        graph = caveman_graph(4, 5, seed=3)
        dense = DenseAdjacency.from_graph(graph)
        shingles = dense_subnode_shingles(dense, make_hash_function(7))
        cache = DenseShingleCache.from_shingles(dense, 7, shingles)
        assert cache.ensure_shingles() == shingles
        assert cache.shingle(0) == shingles[0]
        with pytest.raises(ValueError):
            DenseShingleCache.from_shingles(dense, 7, shingles[:-1])


# ----------------------------------------------------------------------
# Worker-count determinism (the tentpole guarantee)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not execution.process_execution_available(),
                    reason="process execution needs the fork start method")
class TestWorkerCountDeterminism:
    @pytest.mark.parametrize("fixture,key", [
        (int_fixture, "caveman-int"),
        (er_fixture, "er-int"),
        (string_fixture, "caveman-str"),
    ])
    def test_slugger_is_bit_identical_across_worker_counts(self, fixture, key):
        graph = fixture()
        config = SluggerConfig(iterations=5, seed=0)
        fingerprints = {}
        for workers in WORKER_COUNTS:
            executor = None if workers == 1 else parallel_config(workers)
            result = Slugger(config, execution=executor).summarize(graph)
            fingerprints[workers] = slugger_fingerprint(result.summary)
            if workers > 1:
                stats = result.execution_stats
                assert stats["parallel_iterations"] > 0
                assert stats["replayed"] + stats["fallbacks"] > 0
        assert len(set(fingerprints.values())) == 1
        if key != "caveman-str" or HASHSEED_PINNED:
            assert fingerprints[1][:4] == SLUGGER_PINS[key]

    def test_slugger_parallel_matches_with_invariant_checks(self):
        graph = int_fixture()
        config = SluggerConfig(iterations=4, seed=3, check_invariants=True,
                               validate_output=True)
        serial = Slugger(config).summarize(graph)
        parallel = Slugger(config, execution=parallel_config(3)).summarize(graph)
        assert slugger_fingerprint(serial.summary) == slugger_fingerprint(parallel.summary)
        assert serial.history == parallel.history

    def test_default_heuristics_also_preserve_output(self):
        # Default ExecutionConfig (zero-threshold iterations serial, size
        # floors active): still bit-identical, just fewer parallel phases.
        graph = int_fixture()
        config = SluggerConfig(iterations=3, seed=0)
        serial = Slugger(config).summarize(graph)
        parallel = Slugger(config, execution=ExecutionConfig(workers=2)).summarize(graph)
        assert slugger_fingerprint(serial.summary) == slugger_fingerprint(parallel.summary)

    @pytest.mark.parametrize("fixture,key", [
        (int_fixture, "caveman-int"),
        (er_fixture, "er-int"),
        (string_fixture, "caveman-str"),
    ])
    def test_sweg_is_bit_identical_across_worker_counts(self, fixture, key):
        graph = fixture()
        fingerprints = {}
        for workers in WORKER_COUNTS:
            executor = None if workers == 1 else parallel_config(workers)
            summary = sweg_summarize(graph, iterations=5, seed=0, execution=executor)
            summary.validate(graph)
            fingerprints[workers] = (
                summary.cost_eq11(),
                tuple(sorted(summary.superedges)),
                tuple(sorted(summary.corrections_plus)),
                tuple(sorted(summary.corrections_minus)),
            )
        assert len(set(fingerprints.values())) == 1
        if key != "caveman-str" or HASHSEED_PINNED:
            assert fingerprints[1][0] == SWEG_PINS[key]

    def test_engine_threads_execution_through_the_registry(self):
        graph = int_fixture()
        executor = parallel_config(2)
        serial = engine.run("slugger", graph, seed=0, iterations=4)
        parallel = engine.run("slugger", graph, seed=0, iterations=4, execution=executor)
        assert parallel.cost() == serial.cost()
        assert parallel.details["execution"] == {"workers": 2, "parallel_capable": True}
        assert parallel.details["execution_stats"]["parallel_iterations"] > 0
        # Methods without the capability ignore the executor but report it.
        flat = engine.run("randomized", graph, seed=0, execution=executor)
        assert flat.details["execution"]["parallel_capable"] is False
        assert flat.cost() == engine.run("randomized", graph, seed=0).cost()

    def test_supports_parallel_capability_flags(self):
        capabilities = {
            name: type(engine.create(name)).supports_parallel
            for name in engine.available_methods()
        }
        assert capabilities["slugger"] is True
        assert capabilities["sweg"] is True
        assert capabilities["mosso"] is False
        assert capabilities["greedy"] is False

    def test_compare_methods_accepts_an_execution_config(self):
        graph = caveman_graph(8, 6, 0.05, seed=2)
        serial = compare_methods(graph, methods=["slugger", "sweg"], seed=0)
        parallel = compare_methods(graph, methods=["slugger", "sweg"], seed=0,
                                   execution=parallel_config(2))
        assert {r.method: r.report["cost"] for r in serial} == \
            {r.method: r.report["cost"] for r in parallel}
