"""Tests for the extension experiments (pipeline, ordering, lossy, streaming, breakdown)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    compression_pipeline_experiment,
    cost_breakdown_experiment,
    lossy_tradeoff_experiment,
    ordering_ablation_experiment,
    streaming_experiment,
)


class TestCompressionPipelineExperiment:
    def test_records_have_expected_fields(self):
        records = compression_pipeline_experiment(["CA", "PR"], iterations=3, seed=0)
        assert len(records) == 2
        for record in records:
            assert record.parameters["code"] == "gamma"
            assert record.values["raw_bits_per_edge"] > 0
            assert record.values["summary_bits_per_edge"] > 0
            assert record.values["pipeline_ratio"] == pytest.approx(
                record.values["summary_bits_per_edge"] / record.values["raw_bits_per_edge"]
            )

    def test_alternate_code_and_ordering(self):
        records = compression_pipeline_experiment(
            ["CA"], iterations=2, seed=0, code="delta", ordering="degree"
        )
        assert records[0].parameters["code"] == "delta"
        assert records[0].parameters["ordering"] == "degree"


class TestOrderingAblationExperiment:
    def test_covers_requested_orderings(self):
        records = ordering_ablation_experiment(
            dataset="CA", orderings=("natural", "bfs"), seed=0
        )
        assert {record.parameters["ordering"] for record in records} == {"natural", "bfs"}
        for record in records:
            assert record.values["bits_per_edge"] > 0
            assert record.values["locality"] >= 0


class TestLossyTradeoffExperiment:
    def test_error_bound_respected_and_size_monotone(self):
        records = lossy_tradeoff_experiment(["CA"], epsilons=(0.0, 0.5), iterations=3, seed=0)
        assert len(records) == 2
        for record in records:
            assert record.values["max_relative_error"] <= record.parameters["epsilon"] + 1e-9
        assert records[1].values["relative_size"] <= records[0].values["relative_size"] + 1e-9


class TestStreamingExperiment:
    def test_checkpoints_for_both_stream_kinds(self):
        records = streaming_experiment(dataset="CA", deletion_ratio=0.2, checkpoints=3, seed=0)
        kinds = {record.parameters["stream"] for record in records}
        assert kinds == {"insertion_only", "fully_dynamic"}
        for record in records:
            assert record.values["relative_size"] > 0
            assert record.values["num_edges"] > 0

    def test_edge_counts_grow_over_insertion_stream(self):
        records = [
            record
            for record in streaming_experiment(dataset="CA", checkpoints=4, seed=0)
            if record.parameters["stream"] == "insertion_only"
        ]
        counts = [record.values["num_edges"] for record in records]
        assert counts == sorted(counts)


class TestCostBreakdownExperiment:
    def test_decomposition_is_consistent(self):
        records = cost_breakdown_experiment(["CA", "PR"], iterations=3, seed=0)
        assert [record.label for record in records] == ["CA", "PR"]
        for record in records:
            assert record.values["matches_h_edges"] == 1.0
            assert record.values["matches_p_n_edges"] == 1.0
            assert record.values["cost_h"] + record.values["cost_p"] == record.values["cost"]
