"""Tests for the hierarchy/summary export helpers and the cost decomposition."""

import pytest

from repro.analysis.cost_breakdown import (
    cost_decomposition,
    cost_per_root,
    hierarchy_cost_per_root,
    superedge_cost_per_root,
    superedge_cost_per_root_pair,
)
from repro.baselines import sweg_summarize
from repro.core import SluggerConfig, summarize
from repro.graphs import Graph, caveman_graph, complete_graph, load_dataset
from repro.model import (
    Hierarchy,
    HierarchicalSummary,
    ascii_hierarchy,
    flat_summary_to_dot,
    hierarchy_to_dot,
    summary_to_dot,
    supernode_size_distribution,
)


def _slugger_summary(graph, iterations=5, seed=0):
    return summarize(graph, SluggerConfig(iterations=iterations, seed=seed)).summary


def _manual_summary():
    """A small hand-built summary: {0,1} under one parent, leaf 2 separate."""
    graph = Graph(edges=[(0, 1), (0, 2), (1, 2)])
    hierarchy = Hierarchy()
    leaves = {node: hierarchy.add_leaf(node) for node in graph.nodes()}
    parent = hierarchy.create_parent([leaves[0], leaves[1]])
    summary = HierarchicalSummary(hierarchy)
    summary.add_p_edge(parent, parent)
    summary.add_p_edge(parent, leaves[2])
    summary.validate(graph)
    return graph, hierarchy, summary, parent, leaves


class TestDotExport:
    def test_hierarchy_to_dot_contains_all_supernodes(self):
        graph, hierarchy, summary, parent, leaves = _manual_summary()
        dot = hierarchy_to_dot(hierarchy)
        assert dot.startswith("digraph")
        for supernode in hierarchy.supernodes():
            assert f"S{supernode}" in dot
        assert f"{parent} -> {leaves[0]};" in dot

    def test_summary_to_dot_styles_edge_types(self):
        graph = caveman_graph(3, 4, 0.1, seed=0)
        summary = _slugger_summary(graph)
        dot = summary_to_dot(summary)
        assert dot.startswith("graph")
        assert "color=red" in dot  # p-edges are always present
        if summary.num_n_edges:
            assert "style=dashed" in dot
        assert dot.count("color=grey") == summary.num_h_edges

    def test_flat_summary_to_dot(self):
        graph = caveman_graph(3, 4, 0.1, seed=1)
        summary = sweg_summarize(graph, iterations=4, seed=0)
        dot = flat_summary_to_dot(summary)
        assert dot.startswith("graph")
        assert dot.count("g") >= len(summary.groups)

    def test_dot_escapes_quotes_in_labels(self):
        graph = Graph(edges=[('say "hi"', "other")])
        summary = HierarchicalSummary.from_graph(graph)
        dot = summary_to_dot(summary)
        assert '\\"hi\\"' in dot


class TestAsciiHierarchy:
    def test_lists_every_root_and_child(self):
        graph, hierarchy, summary, parent, leaves = _manual_summary()
        text = ascii_hierarchy(summary)
        assert f"S{parent} (2 subnodes)" in text
        assert text.count("\n") + 1 == hierarchy.num_supernodes
        # The child line is indented under its parent.
        child_line = [line for line in text.splitlines() if f"S{leaves[0]} " in line][0]
        assert child_line.startswith("  ")

    def test_accepts_hierarchy_directly(self):
        hierarchy = Hierarchy()
        hierarchy.add_leaf("a")
        assert "1 subnodes" in ascii_hierarchy(hierarchy)

    def test_truncates_large_member_lists(self):
        graph = complete_graph(30)
        summary = _slugger_summary(graph)
        text = ascii_hierarchy(summary, max_members=4)
        assert "..." in text


class TestSizeDistribution:
    def test_hierarchical_counts_roots_only(self):
        graph, hierarchy, summary, parent, leaves = _manual_summary()
        histogram = supernode_size_distribution(summary)
        assert histogram == {2: 1, 1: 1}

    def test_flat_counts_every_group(self):
        graph = caveman_graph(3, 4, 0.0, seed=0)
        summary = sweg_summarize(graph, iterations=4, seed=0)
        histogram = supernode_size_distribution(summary)
        assert sum(size * count for size, count in histogram.items()) == graph.num_nodes

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            supernode_size_distribution("not a summary")


class TestCostBreakdown:
    def test_manual_summary_costs(self):
        graph, hierarchy, summary, parent, leaves = _manual_summary()
        h_costs = hierarchy_cost_per_root(summary)
        assert h_costs[parent] == 2  # Two children under the parent.
        assert h_costs[leaves[2]] == 0
        pair_costs = superedge_cost_per_root_pair(summary)
        assert pair_costs[(parent, parent)] == 1
        key = (parent, leaves[2]) if parent <= leaves[2] else (leaves[2], parent)
        assert pair_costs[key] == 1
        per_root = cost_per_root(summary)
        assert per_root[parent] == 2 + 2  # h-edges + (self-loop and cross superedge)
        assert per_root[leaves[2]] == 1

    def test_decomposition_matches_eq2_on_slugger_output(self):
        graph = load_dataset("PR", seed=0)
        summary = _slugger_summary(graph, iterations=5)
        decomposition = cost_decomposition(summary)
        assert decomposition["matches_h_edges"] == 1.0
        assert decomposition["matches_p_n_edges"] == 1.0
        assert decomposition["cost"] == summary.cost()
        assert decomposition["cost_h"] + decomposition["cost_p"] == summary.cost()
        assert 0.0 < decomposition["max_root_share"] <= 1.0

    def test_superedge_cost_per_root_counts_both_sides(self):
        graph, hierarchy, summary, parent, leaves = _manual_summary()
        per_root = superedge_cost_per_root(summary)
        # The cross superedge is charged to both roots; the self-loop only
        # to its own root.
        assert per_root[parent] == 2
        assert per_root[leaves[2]] == 1

    def test_trivial_summary_decomposition(self):
        graph = complete_graph(4)
        summary = HierarchicalSummary.from_graph(graph)
        decomposition = cost_decomposition(summary)
        assert decomposition["cost_h"] == 0
        assert decomposition["cost_p"] == graph.num_edges
        assert decomposition["num_roots"] == graph.num_nodes
