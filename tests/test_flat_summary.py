"""Unit tests for the flat (Navlakha) summarization model and conversions."""

from __future__ import annotations

import pytest

from repro.exceptions import SummaryInvariantError
from repro.graphs import Graph, caveman_graph, complete_bipartite_graph, complete_graph
from repro.model import FlatSummary, flat_to_hierarchical, hierarchical_report, singleton_summary


class TestEncoding:
    def test_singletons_reproduce_graph(self, any_small_graph):
        summary = FlatSummary.singletons(any_small_graph)
        summary.validate(any_small_graph)
        assert summary.cost() == any_small_graph.num_edges
        assert summary.membership_edges() == 0

    def test_clique_group_uses_self_superedge(self):
        graph = complete_graph(5)
        summary = FlatSummary.from_grouping(graph, [list(range(5))])
        summary.validate(graph)
        assert summary.num_superedges == 1
        assert summary.num_corrections == 0
        assert summary.cost() == 1
        assert summary.cost_eq11() == 1 + 5

    def test_bipartite_grouping(self):
        graph = complete_bipartite_graph(3, 4)
        summary = FlatSummary.from_grouping(graph, [[0, 1, 2], [3, 4, 5, 6]])
        summary.validate(graph)
        assert summary.num_superedges == 1
        assert summary.cost() == 1

    def test_sparse_pair_keeps_corrections(self):
        graph = Graph(edges=[(0, 2)])
        graph.add_node(1)
        graph.add_node(3)
        summary = FlatSummary.from_grouping(graph, [[0, 1], [2, 3]])
        summary.validate(graph)
        # One edge out of four possible: listing it is cheaper than a superedge.
        assert summary.num_superedges == 0
        assert summary.corrections_plus == {(0, 2)}

    def test_near_clique_negative_corrections(self):
        graph = complete_graph(5)
        graph.remove_edge(0, 1)
        summary = FlatSummary.from_grouping(graph, [list(range(5))])
        summary.validate(graph)
        assert summary.num_superedges == 1
        assert summary.corrections_minus == {(0, 1)}

    def test_uncovered_nodes_become_singletons(self):
        graph = complete_graph(4)
        summary = FlatSummary.from_grouping(graph, [[0, 1]])
        summary.validate(graph)
        assert len(summary.groups) == 3

    def test_overlapping_groups_rejected(self):
        graph = complete_graph(4)
        with pytest.raises(SummaryInvariantError):
            FlatSummary.from_grouping(graph, [[0, 1], [1, 2]])

    def test_unknown_member_rejected(self):
        graph = complete_graph(3)
        with pytest.raises(SummaryInvariantError):
            FlatSummary.from_grouping(graph, [[0, 7]])


class TestQueries:
    def test_neighbors_match_graph(self, small_caveman):
        groups = [
            [node for node in small_caveman.nodes() if node // 5 == block]
            for block in range(4)
        ]
        summary = FlatSummary.from_grouping(small_caveman, groups)
        for node in small_caveman.nodes():
            assert summary.neighbors(node) == set(small_caveman.neighbor_set(node))

    def test_neighbors_unknown_node(self):
        summary = FlatSummary.singletons(complete_graph(3))
        with pytest.raises(KeyError):
            summary.neighbors(42)

    def test_group_sizes_and_counts(self):
        graph = complete_graph(6)
        summary = FlatSummary.from_grouping(graph, [[0, 1, 2], [3, 4]])
        assert summary.group_sizes() == [3, 2, 1]
        assert summary.num_non_singleton_groups() == 2
        assert summary.membership_edges() == 5

    def test_relative_size_needs_edges(self):
        graph = Graph(nodes=[0, 1])
        summary = FlatSummary.singletons(graph)
        with pytest.raises(SummaryInvariantError):
            summary.relative_size(graph)

    def test_repr(self):
        summary = FlatSummary.singletons(complete_graph(3))
        assert "groups=3" in repr(summary)


class TestConversion:
    def test_flat_to_hierarchical_preserves_graph(self, small_caveman):
        groups = [
            [node for node in small_caveman.nodes() if node // 5 == block]
            for block in range(4)
        ]
        flat = FlatSummary.from_grouping(small_caveman, groups)
        hierarchical = flat_to_hierarchical(flat)
        hierarchical.validate(small_caveman)

    def test_flat_to_hierarchical_cost_matches_eq11(self, small_caveman, small_random):
        for graph in (small_caveman, small_random):
            groups = {}
            for index, node in enumerate(sorted(graph.nodes(), key=repr)):
                groups.setdefault(index % 5, []).append(node)
            flat = FlatSummary.from_grouping(graph, groups.values())
            hierarchical = flat_to_hierarchical(flat)
            hierarchical.validate(graph)
            assert hierarchical.cost() == flat.cost_eq11()

    def test_singleton_summary_helper(self, small_random):
        summary = singleton_summary(small_random)
        summary.validate(small_random)
        assert summary.cost() == small_random.num_edges

    def test_hierarchical_report_fields(self, small_caveman):
        flat = FlatSummary.from_grouping(
            small_caveman,
            [[node for node in small_caveman.nodes() if node // 5 == block] for block in range(4)],
        )
        report = hierarchical_report(flat_to_hierarchical(flat))
        assert report["cost"] == flat.cost_eq11()
        assert report["max_height"] == 1.0
        assert 0.0 < report["average_leaf_depth"] <= 1.0
