"""Unit tests for graph generators and dataset analogues."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError, InvalidGraphError
from repro.graphs import (
    DATASETS,
    available_datasets,
    barabasi_albert_graph,
    caveman_graph,
    complete_bipartite_graph,
    complete_graph,
    copying_model_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    kronecker_like_graph,
    load_dataset,
    nested_partition_graph,
    path_graph,
    star_graph,
    theorem1_graph,
)
from repro.graphs.datasets import dataset_table
from repro.graphs.generators import planted_clique_graph


class TestDeterministicGenerators:
    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 10

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(3, 4)
        assert graph.num_nodes == 7
        assert graph.num_edges == 12
        assert not graph.has_edge(0, 1)  # No edges within a part.

    def test_star(self):
        graph = star_graph(6)
        assert graph.num_edges == 6
        assert graph.degree(0) == 6

    def test_path_and_cycle(self):
        assert path_graph(5).num_edges == 4
        assert cycle_graph(5).num_edges == 5
        with pytest.raises(InvalidGraphError):
            cycle_graph(2)

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 4 * 2  # horizontal + vertical

    def test_theorem1_graph_degrees(self):
        n, k = 5, 2
        graph = theorem1_graph(n, k)
        assert graph.num_nodes == n + n * k
        # Every grouped subnode misses exactly two hubs, so has degree n - 2.
        for group_member in range(n, n + n * k):
            assert graph.degree(group_member) == n - 2


class TestRandomGenerators:
    def test_erdos_renyi_determinism(self):
        first = erdos_renyi_graph(30, 0.2, seed=5)
        second = erdos_renyi_graph(30, 0.2, seed=5)
        assert first.edge_set() == second.edge_set()

    def test_erdos_renyi_extreme_probabilities(self):
        assert erdos_renyi_graph(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi_graph(10, 1.0, seed=1).num_edges == 45

    def test_barabasi_albert_size(self):
        graph = barabasi_albert_graph(50, 3, seed=2)
        assert graph.num_nodes == 50
        assert graph.num_edges >= 3 * (50 - 3)

    def test_barabasi_albert_rejects_bad_parameters(self):
        with pytest.raises(InvalidGraphError):
            barabasi_albert_graph(3, 5, seed=0)

    def test_caveman_structure(self):
        graph = caveman_graph(3, 4, 0.0, seed=0)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 6
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 4)

    def test_nested_partition_probabilities_increase_density(self):
        sparse = nested_partition_graph((2, 3, 4), (0.0, 0.0, 0.2), seed=1)
        dense = nested_partition_graph((2, 3, 4), (0.0, 0.0, 0.9), seed=1)
        assert dense.num_edges > sparse.num_edges

    def test_nested_partition_level_semantics(self):
        # With only the deepest level connected, edges stay within bottom blocks.
        graph = nested_partition_graph((2, 2, 3), (0.0, 0.0, 1.0), seed=1)
        assert graph.num_edges == 4 * 3  # four bottom blocks of size 3
        for u, v in graph.edges():
            assert u // 3 == v // 3

    def test_nested_partition_argument_mismatch(self):
        with pytest.raises(InvalidGraphError):
            nested_partition_graph((2, 2), (0.5,), seed=0)

    def test_copying_model(self):
        graph = copying_model_graph(60, 4, 0.8, seed=3)
        assert graph.num_nodes == 60
        assert graph.num_edges >= 60

    def test_kronecker_like(self):
        graph = kronecker_like_graph(power=4, seed=4)
        assert graph.num_nodes == 16

    def test_planted_clique(self):
        graph = planted_clique_graph(30, 6, 0.05, seed=9)
        for u in range(6):
            for v in range(u + 1, 6):
                assert graph.has_edge(u, v)


class TestDatasets:
    def test_sixteen_datasets_registered(self):
        assert len(DATASETS) == 16
        assert available_datasets() == list(DATASETS)

    def test_load_dataset_deterministic(self):
        first = load_dataset("PR", seed=0)
        second = load_dataset("PR", seed=0)
        assert first.edge_set() == second.edge_set()

    def test_load_dataset_case_insensitive(self):
        assert load_dataset("pr", seed=0).num_edges == load_dataset("PR", seed=0).num_edges

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("NOPE")

    def test_every_dataset_generates_a_connected_ish_graph(self):
        for key in available_datasets():
            graph = load_dataset(key, seed=0)
            assert graph.num_nodes > 50
            assert graph.num_edges > graph.num_nodes / 2

    def test_dataset_table_fields(self):
        rows = dataset_table(keys=["PR", "CA"])
        assert len(rows) == 2
        assert {"key", "name", "domain", "analogue_nodes", "analogue_edges"} <= set(rows[0])
