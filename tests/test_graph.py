"""Unit tests for the core Graph data structure."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidGraphError
from repro.graphs import Graph
from repro.graphs.graph import canonical_edge


class TestGraphConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_nodes_only(self):
        graph = Graph(nodes=[1, 2, 3])
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_edges_create_nodes(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_duplicate_edges_collapse(self):
        graph = Graph(edges=[(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph(edges=[(3, 3)])

    def test_from_edges_skips_self_loops(self):
        graph = Graph.from_edges([(0, 1), (2, 2), (1, 2)])
        assert graph.num_edges == 2
        assert graph.has_node(2)

    def test_string_nodes(self):
        graph = Graph(edges=[("a", "b"), ("b", "c")])
        assert graph.has_edge("a", "b")
        assert graph.degree("b") == 2


class TestGraphMutation:
    def test_add_edge_returns_newness(self):
        graph = Graph()
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(0, 1) is False

    def test_remove_edge(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert graph.remove_edge(0, 1) is True
        assert graph.remove_edge(0, 1) is False
        assert graph.num_edges == 1
        assert not graph.has_edge(0, 1)

    def test_remove_node_removes_incident_edges(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        graph.remove_node(1)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.has_edge(0, 2)

    def test_remove_missing_node_is_noop(self):
        graph = Graph(edges=[(0, 1)])
        graph.remove_node(99)
        assert graph.num_nodes == 2


class TestGraphQueries:
    def test_neighbors(self):
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.neighbors(0) == frozenset({1, 2, 3})
        assert graph.neighbors(1) == frozenset({0})

    def test_neighbors_of_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(KeyError):
            graph.neighbors(0)

    def test_degree_of_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(KeyError):
            graph.degree(5)

    def test_edges_iterated_once(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        edges = list(graph.edges())
        assert len(edges) == 3
        assert len(set(edges)) == 3

    def test_edges_with_partially_ordered_labels(self):
        # frozenset.__le__ is a subset test: incomparable in both
        # directions without raising; edges() must still yield each edge
        # exactly once via the repr fallback.
        a, b, c = frozenset({1}), frozenset({2}), frozenset({1, 2})
        graph = Graph(edges=[(a, b), (a, c), (b, c)])
        edges = list(graph.edges())
        assert len(edges) == 3
        assert {frozenset(edge) for edge in edges} == {
            frozenset((a, b)), frozenset((a, c)), frozenset((b, c))
        }

    def test_edges_with_mixed_incomparable_labels(self):
        graph = Graph(edges=[(1, "x"), ("x", (2, 3))])
        edges = list(graph.edges())
        assert len(edges) == 2
        assert graph.edge_set() == set(edges)

    def test_edge_set_canonical(self):
        graph = Graph(edges=[(2, 1)])
        assert graph.edge_set() == {(1, 2)}

    def test_contains_and_iter(self):
        graph = Graph(edges=[(0, 1)])
        assert 0 in graph
        assert 5 not in graph
        assert sorted(graph) == [0, 1]
        assert len(graph) == 2

    def test_equality(self):
        first = Graph(edges=[(0, 1), (1, 2)])
        second = Graph(edges=[(1, 2), (0, 1)])
        assert first == second
        second.add_edge(0, 2)
        assert first != second

    def test_copy_is_independent(self):
        graph = Graph(edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_relabeled_preserves_structure(self):
        graph = Graph(edges=[("x", "y"), ("y", "z")])
        relabeled, mapping = graph.relabeled()
        assert relabeled.num_nodes == 3
        assert relabeled.num_edges == 2
        assert set(mapping.values()) == {0, 1, 2}
        assert relabeled.has_edge(mapping["x"], mapping["y"])

    def test_relabeled_sorts_integer_ids_numerically(self):
        # Regression: sorting by repr put 10 before 2, scrambling the
        # contiguous relabeling of integer node sets.
        graph = Graph(edges=[(10, 2), (2, 1), (10, 30)])
        _, mapping = graph.relabeled()
        assert mapping == {1: 0, 2: 1, 10: 2, 30: 3}

    def test_relabeled_mixed_types_fall_back_to_repr(self):
        graph = Graph(edges=[("a", 1), (1, "b")])
        relabeled, mapping = graph.relabeled()
        assert set(mapping.values()) == {0, 1, 2}
        assert relabeled.has_edge(mapping["a"], mapping[1])
        assert relabeled.has_edge(mapping[1], mapping["b"])

    def test_repr_mentions_sizes(self):
        graph = Graph(edges=[(0, 1)])
        assert "num_nodes=2" in repr(graph)
        assert "num_edges=1" in repr(graph)


class TestCanonicalEdge:
    def test_orders_integers(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_orders_strings(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_fall_back_to_repr(self):
        edge = canonical_edge("a", 1)
        assert set(edge) == {"a", 1}
        assert canonical_edge(1, "a") == edge
