"""Unit tests for the hierarchical graph summarization model."""

from __future__ import annotations

import pytest

from repro.exceptions import SummaryInvariantError
from repro.graphs import Graph, complete_graph
from repro.model import Hierarchy, HierarchicalSummary


@pytest.fixture
def fig2_like():
    """A small instance mimicking the paper's running example (Fig. 2).

    Nodes 0-3 form a group where 0,1 are connected to node 5 but 2,3 are
    not; encoded with a positive blanket from the group to 5 plus a
    negative edge from the subgroup {2,3}.
    """
    graph = Graph(edges=[(0, 5), (1, 5), (0, 1), (2, 3)])
    hierarchy = Hierarchy()
    leaves = {node: hierarchy.add_leaf(node) for node in (0, 1, 2, 3, 5)}
    inner = hierarchy.create_parent([leaves[2], leaves[3]])
    outer = hierarchy.create_parent([leaves[0], leaves[1], inner])
    summary = HierarchicalSummary(hierarchy)
    summary.add_p_edge(outer, leaves[5])     # blanket: everyone in {0,1,2,3} ~ 5
    summary.add_n_edge(inner, leaves[5])     # exception: {2,3} are not adjacent to 5
    summary.add_p_edge(leaves[0], leaves[1])
    summary.add_p_edge(inner, inner)         # self-loop encodes the edge (2,3)
    return graph, summary


class TestTrivialSummary:
    def test_from_graph_matches_input(self, any_small_graph):
        summary = HierarchicalSummary.from_graph(any_small_graph)
        summary.validate(any_small_graph)
        assert summary.cost() == any_small_graph.num_edges
        assert summary.num_h_edges == 0

    def test_relative_size_of_trivial_summary_is_one(self, small_random):
        summary = HierarchicalSummary.from_graph(small_random)
        assert summary.relative_size(small_random) == pytest.approx(1.0)

    def test_relative_size_requires_edges(self):
        graph = Graph(nodes=[0, 1])
        summary = HierarchicalSummary.from_graph(graph)
        with pytest.raises(SummaryInvariantError):
            summary.relative_size(graph)


class TestSuperedgeMutation:
    def test_add_and_remove(self):
        graph = Graph(edges=[(0, 1)])
        summary = HierarchicalSummary.from_graph(graph)
        a = summary.hierarchy.leaf_of(0)
        b = summary.hierarchy.leaf_of(1)
        assert summary.has_p_edge(a, b)
        assert not summary.add_p_edge(a, b)  # Already present.
        assert summary.remove_p_edge(a, b)
        assert not summary.remove_p_edge(a, b)
        assert summary.cost() == 0

    def test_sign_conflicts_rejected(self):
        graph = Graph(edges=[(0, 1)])
        summary = HierarchicalSummary.from_graph(graph)
        a = summary.hierarchy.leaf_of(0)
        b = summary.hierarchy.leaf_of(1)
        with pytest.raises(SummaryInvariantError):
            summary.add_n_edge(a, b)

    def test_add_edge_sign_dispatch(self):
        graph = Graph(nodes=[0, 1])
        summary = HierarchicalSummary.from_graph(graph)
        a = summary.hierarchy.leaf_of(0)
        b = summary.hierarchy.leaf_of(1)
        summary.add_edge(a, b, 1)
        assert summary.has_p_edge(a, b)
        summary.remove_edge(a, b, 1)
        summary.add_edge(a, b, -1)
        assert summary.has_n_edge(a, b)
        with pytest.raises(ValueError):
            summary.add_edge(a, b, 0)

    def test_unknown_supernode_rejected(self):
        summary = HierarchicalSummary.from_graph(Graph(nodes=[0]))
        with pytest.raises(KeyError):
            summary.add_p_edge(0, 999)

    def test_incident_edges_and_degree(self, fig2_like):
        _graph, summary = fig2_like
        five = summary.hierarchy.leaf_of(5)
        assert summary.degree(five) == 2
        signs = {sign for _, sign in summary.incident_edges(five)}
        assert signs == {1, -1}


class TestInterpretation:
    def test_fig2_like_decompression(self, fig2_like):
        graph, summary = fig2_like
        summary.validate(graph)
        assert summary.decompress() == graph

    def test_fig2_like_costs(self, fig2_like):
        _graph, summary = fig2_like
        assert summary.num_p_edges == 3
        assert summary.num_n_edges == 1
        assert summary.num_h_edges == 5
        assert summary.cost() == 9
        assert summary.composition() == {"p_edges": 3, "n_edges": 1, "h_edges": 5}

    def test_pair_weight(self, fig2_like):
        _graph, summary = fig2_like
        assert summary.pair_weight(0, 5) == 1
        assert summary.pair_weight(2, 5) == 0
        assert summary.pair_weight(2, 3) == 1
        assert summary.pair_weight(0, 3) == 0
        with pytest.raises(ValueError):
            summary.pair_weight(0, 0)

    def test_neighbors_by_partial_decompression(self, fig2_like):
        graph, summary = fig2_like
        for node in graph.nodes():
            assert summary.neighbors(node) == set(graph.neighbor_set(node))

    def test_self_loop_covers_clique(self):
        graph = complete_graph(4)
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(node) for node in graph.nodes()]
        root = hierarchy.create_parent(leaves)
        summary = HierarchicalSummary(hierarchy)
        summary.add_p_edge(root, root)
        summary.validate(graph)
        assert summary.cost() == 1 + 4


class TestValidation:
    def test_missing_edge_detected(self, fig2_like):
        graph, summary = fig2_like
        summary.remove_p_edge(
            summary.hierarchy.leaf_of(0), summary.hierarchy.leaf_of(1)
        )
        with pytest.raises(SummaryInvariantError):
            summary.validate(graph)

    def test_node_mismatch_detected(self, fig2_like):
        graph, summary = fig2_like
        graph.add_node(99)
        with pytest.raises(SummaryInvariantError):
            summary.validate(graph)

    def test_copy_is_independent(self, fig2_like):
        graph, summary = fig2_like
        clone = summary.copy()
        negative_edge = next(iter(clone.n_edges()))
        clone.remove_n_edge(*negative_edge)
        summary.validate(graph)  # Original unaffected.
        with pytest.raises(SummaryInvariantError):
            clone.validate(graph)

    def test_repr(self, fig2_like):
        _graph, summary = fig2_like
        assert "cost=9" in repr(summary)
