"""Unit tests for the supernode hierarchy forest."""

from __future__ import annotations

import pytest

from repro.exceptions import SummaryInvariantError
from repro.model import Hierarchy


@pytest.fixture
def two_level() -> Hierarchy:
    """Four leaves merged pairwise, then into one root: ((a,b),(c,d))."""
    hierarchy = Hierarchy()
    a, b, c, d = (hierarchy.add_leaf(name) for name in "abcd")
    left = hierarchy.create_parent([a, b])
    right = hierarchy.create_parent([c, d])
    hierarchy.create_parent([left, right])
    return hierarchy


class TestConstruction:
    def test_add_leaf_idempotent(self):
        hierarchy = Hierarchy()
        first = hierarchy.add_leaf("x")
        second = hierarchy.add_leaf("x")
        assert first == second
        assert hierarchy.num_supernodes == 1

    def test_create_parent_requires_roots(self):
        hierarchy = Hierarchy()
        a, b = hierarchy.add_leaf("a"), hierarchy.add_leaf("b")
        parent = hierarchy.create_parent([a, b])
        with pytest.raises(SummaryInvariantError):
            hierarchy.create_parent([a, parent])

    def test_create_parent_requires_children(self):
        with pytest.raises(SummaryInvariantError):
            Hierarchy().create_parent([])

    def test_create_parent_unknown_child(self):
        with pytest.raises(KeyError):
            Hierarchy().create_parent([42])

    def test_sizes(self, two_level):
        root = two_level.roots()[0]
        assert two_level.size(root) == 4
        for child in two_level.children(root):
            assert two_level.size(child) == 2

    def test_hierarchy_edge_count(self, two_level):
        # 4 leaves + 2 internals below one root: 6 non-root supernodes.
        assert two_level.num_hierarchy_edges == 6
        assert two_level.num_supernodes == 7


class TestQueries:
    def test_roots_and_parents(self, two_level):
        roots = two_level.roots()
        assert len(roots) == 1
        root = roots[0]
        assert two_level.parent(root) is None
        for child in two_level.children(root):
            assert two_level.parent(child) == root

    def test_leaf_subnodes(self, two_level):
        root = two_level.roots()[0]
        assert sorted(two_level.leaf_subnodes(root)) == ["a", "b", "c", "d"]
        left = two_level.children(root)[0]
        assert len(two_level.leaf_subnodes(left)) == 2

    def test_root_of_and_ancestors(self, two_level):
        root = two_level.roots()[0]
        leaf = two_level.leaf_of("a")
        assert two_level.root_of(leaf) == root
        ancestors = two_level.ancestors(leaf)
        assert ancestors[0] == leaf
        assert ancestors[-1] == root
        assert len(ancestors) == 3

    def test_is_ancestor(self, two_level):
        root = two_level.roots()[0]
        leaf = two_level.leaf_of("c")
        assert two_level.is_ancestor(root, leaf)
        assert two_level.is_ancestor(leaf, leaf)
        assert not two_level.is_ancestor(leaf, root)

    def test_contains_subnode(self, two_level):
        root = two_level.roots()[0]
        assert two_level.contains_subnode(root, "b")
        left = two_level.children(root)[0]
        members = set(two_level.leaf_subnodes(left))
        for name in "abcd":
            assert two_level.contains_subnode(left, name) == (name in members)
        assert not two_level.contains_subnode(left, "zzz")

    def test_descendants(self, two_level):
        root = two_level.roots()[0]
        descendants = set(two_level.descendants(root))
        assert len(descendants) == 7
        assert set(two_level.descendants(root, include_self=False)) == descendants - {root}


class TestShapeStatistics:
    def test_heights(self, two_level):
        root = two_level.roots()[0]
        assert two_level.height(root) == 2
        assert two_level.max_height() == 2
        leaf = two_level.leaf_of("a")
        assert two_level.height(leaf) == 0

    def test_leaf_depths(self, two_level):
        depths = two_level.leaf_depths()
        assert set(depths.values()) == {2}
        assert two_level.average_leaf_depth() == 2.0

    def test_singleton_forest_statistics(self):
        hierarchy = Hierarchy()
        hierarchy.add_leaf(1)
        hierarchy.add_leaf(2)
        assert hierarchy.max_height() == 0
        assert hierarchy.average_leaf_depth() == 0.0
        assert hierarchy.num_hierarchy_edges == 0


class TestSpliceOut:
    def test_splice_out_internal(self, two_level):
        root = two_level.roots()[0]
        left = two_level.children(root)[0]
        before_edges = two_level.num_hierarchy_edges
        two_level.splice_out(left)
        assert two_level.num_hierarchy_edges == before_edges - 1
        assert not two_level.contains(left)
        # The grandchildren are now direct children of the root.
        assert len(two_level.children(root)) == 3

    def test_splice_out_root(self, two_level):
        root = two_level.roots()[0]
        two_level.splice_out(root)
        assert len(two_level.roots()) == 2
        assert two_level.max_height() == 1

    def test_splice_out_leaf_rejected(self, two_level):
        with pytest.raises(SummaryInvariantError):
            two_level.splice_out(two_level.leaf_of("a"))

    def test_splice_out_unknown(self):
        with pytest.raises(KeyError):
            Hierarchy().splice_out(3)


class TestCopy:
    def test_copy_is_independent(self, two_level):
        clone = two_level.copy()
        root = clone.roots()[0]
        clone.splice_out(root)
        assert len(two_level.roots()) == 1
        assert len(clone.roots()) == 2

    def test_repr(self, two_level):
        assert "supernodes=7" in repr(two_level)
