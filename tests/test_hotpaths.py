"""Regression tests for the hot-path overhaul.

The lazy/cached shingle scheme, the memoized per-supernode leaf sets, and
the position-map merge loop are pure refactors of *where* work happens:
these tests pin the invariants that guarantee the *what* is unchanged —
eager/lazy equivalence for fixed seeds, leaf-cache freshness across
merges and pruning, and index consistency after every driver iteration.
"""

from __future__ import annotations

import pytest

from repro.core import Slugger, SluggerConfig, summarize
from repro.core.candidates import generate_candidate_sets
from repro.core.saving import best_partner, saving, two_hop_roots
from repro.core.shingles import make_hash_function, root_shingles, subnode_shingles
from repro.core.state import SluggerState
from repro.exceptions import SummaryInvariantError
from repro.graphs import caveman_graph, erdos_renyi_graph
from repro.model.hierarchy import Hierarchy
from repro.utils.rng import ensure_rng


def eager_generate_candidate_sets(graph, hierarchy, roots, config, seed=None):
    """The seed implementation: rehash every node on every shingle round."""
    rng = ensure_rng(seed)
    groups = [list(roots)]
    finished = []
    for _ in range(config.shingle_rounds):
        oversized = [group for group in groups if len(group) > config.max_candidate_size]
        finished.extend(group for group in groups if len(group) <= config.max_candidate_size)
        if not oversized:
            groups = []
            break
        hash_function = make_hash_function(rng.randrange(2**61))
        node_shingles = subnode_shingles(graph, hash_function)
        groups = []
        for group in oversized:
            shingles = root_shingles(group, hierarchy, node_shingles)
            buckets = {}
            for root in group:
                buckets.setdefault(shingles[root], []).append(root)
            if len(buckets) == 1:
                groups.append(group)
            else:
                groups.extend(buckets.values())
    for group in groups:
        if len(group) <= config.max_candidate_size:
            finished.append(group)
        else:
            shuffled = list(group)
            rng.shuffle(shuffled)
            for start in range(0, len(shuffled), config.max_candidate_size):
                finished.append(shuffled[start:start + config.max_candidate_size])
    candidate_sets = [group for group in finished if len(group) >= 2]
    rng.shuffle(candidate_sets)
    return candidate_sets


class TestLazyCandidatesEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 23])
    def test_flat_hierarchy_matches_eager(self, seed):
        graph = erdos_renyi_graph(120, 0.08, seed=4)
        state = SluggerState(graph)
        config = SluggerConfig(max_candidate_size=10, seed=0)
        roots = sorted(state.roots)
        lazy = generate_candidate_sets(graph, state.summary.hierarchy, roots, config, seed=seed)
        eager = eager_generate_candidate_sets(graph, state.summary.hierarchy, roots, config, seed=seed)
        assert lazy == eager

    def test_merged_hierarchy_matches_eager(self):
        graph = caveman_graph(6, 5, seed=2)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        leaves = sorted(state.roots)
        for first, second in zip(leaves[0::4], leaves[1::4]):
            state.merge_roots(first, second)
        config = SluggerConfig(max_candidate_size=4, seed=0)
        roots = sorted(state.roots)
        for seed in (3, 11):
            lazy = generate_candidate_sets(graph, hierarchy, roots, config, seed=seed)
            eager = eager_generate_candidate_sets(graph, hierarchy, roots, config, seed=seed)
            assert lazy == eager


class TestBestPartnerShortCircuits:
    def naive_best_partner(self, state, root, candidates, height_bound=None):
        admissible = two_hop_roots(state, root)
        best_value = float("-inf")
        best_root = -1
        for other in candidates:
            if other == root or other not in admissible:
                continue
            if height_bound is not None:
                new_height = 1 + max(state.tree_height[root], state.tree_height[other])
                if new_height > height_bound:
                    continue
            value = saving(state, root, other)
            if value > best_value:
                best_value = value
                best_root = other
        return best_value, best_root

    @pytest.mark.parametrize("height_bound", [None, 2])
    def test_matches_naive_search(self, height_bound):
        graph = caveman_graph(4, 5, 0.1, seed=5)
        state = SluggerState(graph)
        roots = sorted(state.roots)
        for root in roots[:8]:
            candidates = [other for other in roots if other != root]
            expected = self.naive_best_partner(state, root, candidates, height_bound)
            actual = best_partner(state, root, candidates, height_bound=height_bound)
            assert actual == expected


class TestLeafCache:
    def test_create_parent_updates_leaf_sets_incrementally(self):
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(f"n{i}") for i in range(6)]
        left = hierarchy.create_parent(leaves[:3])
        right = hierarchy.create_parent(leaves[3:])
        top = hierarchy.create_parent([left, right])
        assert sorted(hierarchy.leaf_ids(left)) == sorted(leaves[:3])
        assert sorted(hierarchy.leaf_ids(top)) == sorted(leaves)
        assert sorted(hierarchy.leaf_subnodes(top)) == [f"n{i}" for i in range(6)]
        hierarchy.verify_leaf_cache()

    def test_splice_out_keeps_leaf_cache_fresh(self):
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(i) for i in range(4)]
        inner = hierarchy.create_parent(leaves[:2])
        top = hierarchy.create_parent([inner, leaves[2], leaves[3]])
        assert len(hierarchy.leaf_ids(top)) == 4
        hierarchy.splice_out(inner)
        assert sorted(hierarchy.leaf_ids(top)) == sorted(leaves)
        hierarchy.verify_leaf_cache()

    def test_copy_carries_cache_without_sharing_mutations(self):
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(i) for i in range(4)]
        hierarchy.create_parent(leaves[:2])
        clone = hierarchy.copy()
        merged = clone.create_parent([clone.roots()[0], clone.roots()[1]])
        clone.verify_leaf_cache()
        hierarchy.verify_leaf_cache()
        assert not hierarchy.contains(merged)

    def test_verify_leaf_cache_detects_corruption(self):
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(i) for i in range(3)]
        top = hierarchy.create_parent(leaves)
        hierarchy._leaf_cache[top] = (leaves[0],)
        with pytest.raises(SummaryInvariantError):
            hierarchy.verify_leaf_cache()


class TestDriverInvariants:
    """check_consistency after every iteration of small end-to-end runs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_caveman_run_keeps_indices_consistent(self, seed):
        graph = caveman_graph(5, 5, 0.05, seed=3)
        config = SluggerConfig(iterations=5, seed=seed, check_invariants=True,
                               validate_output=True)
        result = Slugger(config).summarize(graph)
        assert result.cost() <= graph.num_edges

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_erdos_renyi_run_keeps_indices_consistent(self, seed):
        graph = erdos_renyi_graph(60, 0.12, seed=8)
        config = SluggerConfig(iterations=4, seed=seed, check_invariants=True,
                               validate_output=True)
        result = Slugger(config).summarize(graph)
        result.summary.validate(graph)

    def test_height_bounded_run_keeps_indices_consistent(self):
        graph = caveman_graph(4, 4, seed=1)
        result = summarize(graph, iterations=4, seed=0, height_bound=2,
                           check_invariants=True, validate_output=True)
        assert result.summary.hierarchy.max_height() <= 2

    def test_state_leaf_accessors_follow_merges(self):
        graph = caveman_graph(3, 3, seed=0)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        first, second = sorted(state.roots)[:2]
        count = hierarchy.size(first) + hierarchy.size(second)
        merged = state.merge_roots(first, second)
        assert state.leaf_count(merged) == count
        assert len(state.leaf_subnodes(merged)) == count
        state.check_consistency()
