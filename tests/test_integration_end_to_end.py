"""End-to-end integration tests across subsystems.

Each test chains several subsystems the way a downstream user would:
dataset → summarizer → metrics → bit compression → serialization →
algorithms on the summary.  They complement the per-module unit tests by
checking that the pieces compose without glue code.
"""

from __future__ import annotations

import pytest

from repro import Graph, SluggerConfig, load_dataset, summarize
from repro.algorithms import bfs_distances, connected_components, pagerank
from repro.analysis import compare_methods, compression_report, cost_decomposition
from repro.baselines import mosso_summarize, sweg_summarize
from repro.compression import (
    compress_graph,
    compress_hierarchical_summary,
    compression_report as bits_report,
)
from repro.lossy import error_report
from repro.model import (
    ascii_hierarchy,
    load_hierarchical_summary,
    save_hierarchical_summary,
)
from repro.streaming import fully_dynamic_stream, replay_stream


@pytest.fixture(scope="module")
def pr_graph():
    return load_dataset("PR", seed=0)


@pytest.fixture(scope="module")
def pr_result(pr_graph):
    return summarize(pr_graph, SluggerConfig(iterations=8, seed=0))


class TestSummarizeAnalyzeCompress:
    def test_summary_metrics_and_bits_agree(self, pr_graph, pr_result):
        summary = pr_result.summary
        summary.validate(pr_graph)
        report = compression_report(summary, pr_graph)
        assert report["relative_size"] < 1.0
        decomposition = cost_decomposition(summary)
        assert decomposition["cost"] == report["cost"]

        bits = bits_report(pr_graph, summary, code="gamma", ordering="bfs", seed=0)
        # A summary with fewer edges than the graph should also need fewer
        # bits once both sides go through the same gap compressor.
        assert bits["pipeline_ratio"] < 1.0

    def test_summary_survives_bit_and_json_round_trips(self, pr_graph, pr_result, tmp_path):
        summary = pr_result.summary
        from_bits = compress_hierarchical_summary(summary).decompress()
        assert from_bits.decompress() == pr_graph

        path = tmp_path / "pr.json"
        save_hierarchical_summary(summary, path)
        from_json = load_hierarchical_summary(path)
        from_json.validate(pr_graph)
        assert from_json.cost() == summary.cost()

    def test_algorithms_agree_between_graph_and_summary(self, pr_graph, pr_result):
        summary = pr_result.summary
        source = pr_graph.nodes()[0]
        assert bfs_distances(pr_graph, source) == bfs_distances(summary, source)
        graph_components = sorted(map(frozenset, connected_components(pr_graph)))
        summary_components = sorted(map(frozenset, connected_components(summary)))
        assert graph_components == summary_components
        graph_ranks = pagerank(pr_graph, iterations=10)
        summary_ranks = pagerank(summary, iterations=10)
        assert graph_ranks.keys() == summary_ranks.keys()
        assert all(abs(graph_ranks[n] - summary_ranks[n]) < 1e-9 for n in graph_ranks)

    def test_ascii_rendering_lists_every_subnode_once(self, pr_graph, pr_result):
        text = ascii_hierarchy(pr_result.summary)
        assert text.count("(1 subnodes)") <= pr_graph.num_nodes
        # Every root supernode appears exactly once at indentation level 0.
        top_level_lines = [line for line in text.splitlines() if not line.startswith(" ")]
        assert len(top_level_lines) == len(pr_result.summary.hierarchy.roots())


class TestMethodsRemainComparable:
    def test_all_methods_are_lossless_and_ranked(self):
        graph = load_dataset("CA", seed=0)
        results = compare_methods(graph, seed=0)
        assert [result.method for result in results][0] is not None
        sizes = [result.relative_size for result in results]
        assert sizes == sorted(sizes)
        for result in results:
            assert error_report(result.summary, graph)["exact"] == 1.0

    def test_offline_and_online_mosso_are_consistent(self):
        graph = load_dataset("CA", seed=0)
        offline = mosso_summarize(graph, seed=0)
        offline.validate(graph)
        events = fully_dynamic_stream(graph, deletion_ratio=0.15, seed=0)
        online = replay_stream(events, checkpoints=4, validate=False)
        online.final_summary.validate(online.final_graph)
        assert online.final_graph.edge_set() == graph.edge_set()
        # Online maintenance should stay within a small factor of offline.
        assert online.final_relative_size() <= 2.0 * offline.relative_size(graph) + 0.5

    def test_sweg_summary_composes_with_bit_compression(self):
        graph = load_dataset("FA", seed=0)
        summary = sweg_summarize(graph, iterations=5, seed=0)
        raw_bits = compress_graph(graph, code="gamma", ordering="bfs").size_bits()
        assert raw_bits > 0
        from repro.compression import compress_flat_summary

        summary_bits = compress_flat_summary(summary).size_bits()
        assert summary_bits > 0
        assert compress_flat_summary(summary).decompress().decompress() == graph


class TestRobustness:
    def test_every_component_handles_a_tiny_graph(self, tmp_path):
        graph = Graph(edges=[(0, 1), (1, 2)])
        result = summarize(graph, SluggerConfig(iterations=2, seed=0))
        result.summary.validate(graph)
        assert compress_hierarchical_summary(result.summary).decompress().decompress() == graph
        path = tmp_path / "tiny.json"
        save_hierarchical_summary(result.summary, path)
        load_hierarchical_summary(path).validate(graph)

    def test_disconnected_graph_end_to_end(self):
        graph = Graph(edges=[(0, 1), (0, 2), (1, 2), (10, 11), (11, 12), (10, 12)])
        result = summarize(graph, SluggerConfig(iterations=4, seed=0))
        result.summary.validate(graph)
        components = connected_components(result.summary)
        assert sorted(map(len, components), reverse=True) == [3, 3]
