"""Tests for edge-list I/O, node sampling, and structural graph properties."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError, InvalidGraphError
from repro.graphs import (
    Graph,
    caveman_graph,
    connected_components,
    degree_histogram,
    erdos_renyi_graph,
    global_clustering_coefficient,
    graph_density,
    induced_subgraph,
    path_graph,
    read_edge_list,
    sample_nodes,
    scalability_series,
    write_edge_list,
)
from repro.graphs.generators import complete_graph


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        graph = erdos_renyi_graph(25, 0.2, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.edge_set() == graph.edge_set()

    def test_comments_and_self_loops_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# a comment\n% another\n1 2\n2 2\n2 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert not graph.has_edge(2, 2)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_relabel_option(self, tmp_path):
        path = tmp_path / "named.txt"
        path.write_text("alpha beta\nbeta gamma\n")
        graph = read_edge_list(path, relabel=True)
        assert set(graph.nodes()) == {0, 1, 2}
        assert graph.num_edges == 2

    def test_string_and_int_nodes(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text("1 two\n")
        graph = read_edge_list(path)
        assert graph.has_edge(1, "two")

    def test_crlf_line_endings(self, tmp_path):
        # Windows-origin downloads arrive with \r\n; the \r must not
        # leak into node labels or break the column split.
        path = tmp_path / "crlf.txt"
        path.write_bytes(b"# comment\r\n1 2\r\n2 3\r\n")
        graph = read_edge_list(path)
        assert graph.edge_set() == {(1, 2), (2, 3)}
        assert all(isinstance(node, int) for node in graph.nodes())

    def test_utf8_bom_on_first_line(self, tmp_path):
        # A BOM glued to the first token must not turn the label '1'
        # into the string '﻿1'.
        path = tmp_path / "bom.txt"
        path.write_bytes(b"\xef\xbb\xbf1 2\n2 3\n")
        graph = read_edge_list(path)
        assert graph.edge_set() == {(1, 2), (2, 3)}
        assert not graph.has_node("﻿1")

    def test_utf8_bom_before_comment(self, tmp_path):
        path = tmp_path / "bom_comment.txt"
        path.write_bytes(b"\xef\xbb\xbf# header\n5 6\n")
        graph = read_edge_list(path)
        assert graph.edge_set() == {(5, 6)}

    def test_tab_separated_with_trailing_columns(self, tmp_path):
        # SNAP exports: \t separators and extra columns (weights,
        # timestamps) that must be ignored.
        path = tmp_path / "snap.txt"
        path.write_text("1\t2\t0.5\n2\t3\t1.25\t1999-01-01\n4 5 extra stuff\n")
        graph = read_edge_list(path)
        assert graph.edge_set() == {(1, 2), (2, 3), (4, 5)}


class TestSampling:
    def test_sample_nodes_fraction(self):
        graph = erdos_renyi_graph(50, 0.1, seed=2)
        sampled = sample_nodes(graph, 0.4, seed=3)
        assert len(sampled) == 20
        assert set(sampled) <= set(graph.nodes())

    def test_sample_nodes_deterministic(self):
        graph = erdos_renyi_graph(50, 0.1, seed=2)
        assert sample_nodes(graph, 0.3, seed=5) == sample_nodes(graph, 0.3, seed=5)

    def test_induced_subgraph(self):
        graph = complete_graph(6)
        subgraph = induced_subgraph(graph, [0, 1, 2])
        assert subgraph.num_nodes == 3
        assert subgraph.num_edges == 3

    def test_induced_subgraph_unknown_node(self):
        graph = complete_graph(3)
        with pytest.raises(InvalidGraphError):
            induced_subgraph(graph, [0, 99])

    def test_scalability_series_monotone_sizes(self):
        graph = erdos_renyi_graph(80, 0.1, seed=4)
        series = scalability_series(graph, (0.25, 0.5, 1.0), seed=6)
        assert len(series) == 3
        assert series[0].num_nodes == 20
        assert series[-1].num_nodes == 80
        assert series[0].num_edges <= series[-1].num_edges


class TestProperties:
    def test_connected_components(self):
        graph = Graph(edges=[(0, 1), (1, 2), (5, 6)])
        graph.add_node(9)
        components = connected_components(graph)
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 2, 3]

    def test_density(self):
        assert graph_density(complete_graph(5)) == 1.0
        assert graph_density(Graph(nodes=[0])) == 0.0

    def test_degree_histogram(self):
        histogram = degree_histogram(path_graph(4))
        assert histogram == {1: 2, 2: 2}

    def test_clustering_coefficient(self):
        assert global_clustering_coefficient(complete_graph(4)) == pytest.approx(1.0)
        assert global_clustering_coefficient(path_graph(5)) == 0.0
        # A caveman graph of cliques keeps transitivity high.
        assert global_clustering_coefficient(caveman_graph(3, 4, seed=0)) > 0.9
