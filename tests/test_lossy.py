"""Tests for reconstruction-error metrics and bounded-error summarization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SluggerConfig, summarize
from repro.exceptions import LossyBoundError
from repro.graphs import Graph, caveman_graph, complete_graph, erdos_renyi_graph
from repro.lossy import (
    edge_error_counts,
    error_report,
    l1_reconstruction_error,
    lossy_slugger_sparsify,
    lossy_sweg_summarize,
    lossy_tradeoff_curve,
    max_relative_error,
    neighborhood_errors,
    sparsify_hierarchical_summary,
)
from repro.model.flat import FlatSummary


class TestErrorMetrics:
    def test_exact_summary_has_zero_error(self):
        graph = caveman_graph(3, 5, 0.1, seed=0)
        summary = summarize(graph, SluggerConfig(iterations=5, seed=0)).summary
        assert edge_error_counts(summary, graph) == (0, 0)
        assert max_relative_error(summary, graph) == 0.0
        assert l1_reconstruction_error(summary, graph) == 0
        report = error_report(summary, graph)
        assert report["exact"] == 1.0

    def test_graph_against_itself_is_exact(self):
        graph = complete_graph(5)
        assert error_report(graph, graph)["exact"] == 1.0

    def test_lost_edge_is_counted_for_both_endpoints(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        damaged = Graph(edges=[(0, 1)], nodes=[2])
        errors = neighborhood_errors(damaged, graph)
        assert errors[1] == 1 and errors[2] == 1 and errors[0] == 0
        assert edge_error_counts(damaged, graph) == (1, 0)
        assert l1_reconstruction_error(damaged, graph) == 2

    def test_spurious_edge_is_counted(self):
        graph = Graph(edges=[(0, 1)], nodes=[2])
        noisy = Graph(edges=[(0, 1), (1, 2)])
        lost, spurious = edge_error_counts(noisy, graph)
        assert (lost, spurious) == (0, 1)

    def test_max_relative_error_uses_degree(self):
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3), (0, 4)])
        damaged = Graph(edges=[(0, 1), (0, 2), (0, 3)], nodes=[4])
        # Node 0 has degree 4 and lost one neighbor (error 0.25); node 4
        # has degree 1 and lost its only neighbor (error 1.0).
        assert max_relative_error(damaged, graph) == pytest.approx(1.0)

    def test_error_report_mean(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        damaged = Graph(edges=[(0, 1)], nodes=[2])
        report = error_report(damaged, graph)
        assert report["mean_node_error"] == pytest.approx(2 / 3)
        assert report["exact"] == 0.0


class TestLossySweg:
    def test_epsilon_zero_stays_lossless(self):
        graph = caveman_graph(4, 5, 0.1, seed=1)
        result = lossy_sweg_summarize(graph, epsilon=0.0, iterations=5, seed=0)
        assert result.dropped_corrections == 0
        assert result.measured_error == 0.0
        result.summary.validate(graph)

    def test_positive_epsilon_respects_bound(self):
        graph = caveman_graph(4, 6, 0.15, seed=2)
        for epsilon in (0.1, 0.3, 0.6):
            result = lossy_sweg_summarize(graph, epsilon=epsilon, iterations=5, seed=0)
            assert result.measured_error <= epsilon + 1e-9
            assert isinstance(result.summary, FlatSummary)

    def test_size_never_increases_with_epsilon(self):
        graph = erdos_renyi_graph(40, 0.15, seed=3)
        sizes = [
            lossy_sweg_summarize(graph, epsilon=epsilon, iterations=5, seed=0).relative_size
            for epsilon in (0.0, 0.25, 0.5, 1.0)
        ]
        assert all(later <= earlier + 1e-9 for earlier, later in zip(sizes, sizes[1:]))

    def test_invalid_epsilon_rejected(self):
        graph = complete_graph(4)
        with pytest.raises(ValueError):
            lossy_sweg_summarize(graph, epsilon=1.5)

    def test_tradeoff_curve_rows(self):
        graph = caveman_graph(3, 5, 0.1, seed=4)
        rows = lossy_tradeoff_curve(graph, [0.0, 0.4], iterations=4, seed=0)
        assert [row["epsilon"] for row in rows] == [0.0, 0.4]
        assert all(row["max_relative_error"] <= row["epsilon"] + 1e-9 for row in rows)

    @given(st.floats(0.0, 1.0), st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_bound_property(self, epsilon, seed):
        graph = erdos_renyi_graph(18, 0.25, seed=seed % 500)
        result = lossy_sweg_summarize(graph, epsilon=epsilon, iterations=3, seed=seed)
        assert result.measured_error <= epsilon + 1e-9


class TestSparsifyHierarchical:
    def test_epsilon_zero_removes_nothing(self):
        graph = caveman_graph(4, 5, 0.1, seed=5)
        summary = summarize(graph, SluggerConfig(iterations=5, seed=0)).summary
        before = summary.cost()
        assert sparsify_hierarchical_summary(summary, graph, epsilon=0.0) == 0
        assert summary.cost() == before

    def test_sparsify_respects_bound_and_reduces_cost(self):
        graph = caveman_graph(5, 6, 0.2, seed=6)
        result = summarize(graph, SluggerConfig(iterations=8, seed=0))
        summary = result.summary
        before = summary.cost()
        report = lossy_slugger_sparsify(summary, graph, epsilon=0.5, seed=0)
        assert report["max_relative_error"] <= 0.5 + 1e-9
        assert summary.cost() <= before
        assert report["cost"] == summary.cost()

    def test_check_bound_can_raise(self):
        # Force a bound violation by sparsifying with a generous budget
        # and then re-checking against a much tighter epsilon.
        graph = caveman_graph(5, 6, 0.2, seed=7)
        summary = summarize(graph, SluggerConfig(iterations=8, seed=0)).summary
        removed = sparsify_hierarchical_summary(summary, graph, epsilon=1.0, seed=0)
        if removed == 0:
            pytest.skip("summary had no removable n-edges on this seed")
        with pytest.raises(LossyBoundError):
            lossy_slugger_sparsify(summary, graph, epsilon=0.0, seed=0)
