"""Tests for the telemetry layer (repro.obs) and its engine wiring.

Three families of guarantees:

* **Registry semantics** — labeled counters/gauges/histograms behave per
  the Prometheus data model, snapshots are plain sorted data, and
  :meth:`~repro.obs.MetricsRegistry.merge` is order-independent.
* **Exporter fidelity** — the Prometheus text rendering round-trips
  through :func:`~repro.obs.parse_prometheus_text` and the Chrome trace
  export is structurally loadable.
* **Non-perturbation** — a traced/metered SLUGGER run produces a summary
  bit-identical to an untraced one at every worker count, and per-shard
  registries merged across a fork boundary agree with the serial totals.
  ``REPRO_TEST_WORKERS`` (comma-separated counts) restricts the worker
  sweep for the CI matrix legs.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro import ExecutionConfig, Slugger, SluggerConfig
from repro.engine.hooks import RunControl
from repro.exceptions import TelemetryError
from repro.graphs import caveman_graph, erdos_renyi_graph
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
    NULL_TRACER,
    Stopwatch,
    Tracer,
    ingest_stats,
    parse_prometheus_text,
    render_json,
    render_prometheus,
)


def worker_counts():
    env = os.environ.get("REPRO_TEST_WORKERS")
    if env:
        return tuple(int(part) for part in env.split(","))
    return (1, 2, 4)


def fingerprint(summary):
    return (
        summary.cost(),
        summary.num_p_edges,
        summary.num_n_edges,
        summary.num_h_edges,
        tuple(sorted(map(tuple, summary.p_edges()))),
        tuple(sorted(map(tuple, summary.n_edges()))),
    )


class TestMetricsRegistry:
    def test_counter_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", outcome="ok").inc()
        registry.counter("jobs_total", outcome="ok").inc()
        registry.counter("jobs_total", outcome="failed").inc(3)
        series = registry.snapshot()["jobs_total"]["series"]
        assert [(s["labels"], s["value"]) for s in series] == [
            ({"outcome": "failed"}, 3.0),
            ({"outcome": "ok"}, 2.0),
        ]

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        registry.counter("c", b="2", a="1").inc()
        (series,) = registry.snapshot()["c"]["series"]
        assert series["value"] == 2.0

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("c").inc(-1)

    def test_type_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(TelemetryError):
            registry.gauge("x")
        registry.histogram("h").observe(1.0)
        with pytest.raises(TelemetryError):
            registry.histogram("h", buckets=(1.0, 2.0))

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        (series,) = registry.snapshot()["depth"]["series"]
        assert series["value"] == 6.0

    def test_histogram_bucket_edges_are_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(0.1, 1.0, 10.0))
        for value in (0.1, 0.05, 1.0, 5.0, 100.0):
            hist.observe(value)
        # v <= bound: 0.05 and 0.1 land in le=0.1; 1.0 in le=1; 5.0 in
        # le=10; 100.0 overflows to +Inf.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.cumulative_counts() == [2, 3, 4, 5]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.15)

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.histogram("bad", buckets=(1.0, 1.0, 2.0))

    def test_default_buckets_are_used(self):
        registry = MetricsRegistry()
        registry.histogram("t").observe(0.2)
        assert registry.snapshot()["t"]["buckets"] == list(DEFAULT_BUCKETS)

    def test_merge_is_order_independent(self):
        def shard(seed):
            registry = MetricsRegistry()
            registry.counter("done_total", shard=str(seed)).inc(seed)
            registry.counter("done_total", shard="all").inc(seed)
            registry.gauge("resident").inc(seed)
            hist = registry.histogram("seconds", buckets=(0.5, 1.0))
            # Binary-exact observations so summation commutes exactly.
            hist.observe(seed / 4.0)
            return registry.snapshot()

        snapshots = [shard(seed) for seed in (1, 2, 3, 4)]
        forward = MetricsRegistry()
        for snap in snapshots:
            forward.merge(snap)
        backward = MetricsRegistry()
        for snap in reversed(snapshots):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()
        assert render_prometheus(forward.snapshot()) == \
            render_prometheus(backward.snapshot())

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(0.5)
        with pytest.raises(TelemetryError):
            a.merge(b.snapshot())

    def test_snapshot_is_json_serializable_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total").inc()
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.loads(render_json(snapshot))

    def test_ingest_stats_flattens_nested_dicts(self):
        registry = MetricsRegistry()
        ingest_stats(registry, {
            "hits": 4,
            "mode": "thread",
            "closed": False,
            "store": {"misses": 2},
            "skipped": [1, 2],
        }, "svc")
        snapshot = registry.snapshot()
        assert snapshot["svc_hits"]["series"][0]["value"] == 4.0
        assert snapshot["svc_closed"]["series"][0]["value"] == 0.0
        assert snapshot["svc_store_misses"]["series"][0]["value"] == 2.0
        info = snapshot["svc_mode_info"]["series"][0]
        assert info["labels"] == {"value": "thread"} and info["value"] == 1.0
        assert "svc_skipped" not in snapshot


class TestNullObjects:
    def test_null_metrics_is_inert(self):
        NULL_METRICS.counter("c", outcome="x").inc(5)
        NULL_METRICS.gauge("g").set(3)
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.merge({"c": {}}) is NULL_METRICS
        assert NULL_METRICS.enabled is False

    def test_null_tracer_spans_still_self_time(self):
        with NULL_TRACER.span("work", lane="x", detail=1) as span:
            span.annotate(more=2)
        assert span.duration >= 0.0
        assert NULL_TRACER.sorted_spans() == []
        assert NULL_TRACER.enabled is False

    def test_stopwatch_reexport(self):
        watch = Stopwatch()
        assert watch.elapsed >= 0.0


class TestTracer:
    def test_nesting_and_ids_are_deterministic(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        spans = tracer.sorted_spans()
        # Id order is creation order: outer opened first.
        assert [s.name for s in spans] == ["outer", "inner"]
        assert [s.span_id for s in spans] == [0, 1]
        inner = next(s for s in spans if s.name == "inner")
        assert inner.parent_id == outer.span_id

    def test_add_converts_raw_perf_counter_readings(self):
        import time

        tracer = Tracer()
        raw = time.perf_counter()
        span = tracer.add("shard", perf_start=raw, duration=0.25, lane="shard-1",
                          groups=7)
        assert span.start == pytest.approx(raw - tracer.epoch)
        assert span.duration == 0.25
        assert span.attrs["groups"] == 7

    def test_jsonl_writer_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", lane="main", k=1):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["name"] == "a"
        assert records[0]["attrs"] == {"k": 1}

    def test_chrome_trace_structure(self, tmp_path):
        tracer = Tracer()
        with tracer.span("phase", lane="main"):
            pass
        tracer.add("shard", perf_start=tracer.epoch, duration=0.1, lane="shard-0")
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert sorted(e["args"]["name"] for e in metadata) == ["main", "shard-0"]
        assert {e["name"] for e in complete} == {"phase", "shard"}
        shard = next(e for e in complete if e["name"] == "shard")
        assert shard["dur"] == pytest.approx(0.1 * 1e6)
        # Lanes map to distinct tids; every event carries a span id.
        assert len({e["tid"] for e in metadata}) == len(metadata)
        assert all("span_id" in e["args"] for e in complete)


class TestExporters:
    def golden_registry(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="served requests",
                         method="slugger").inc(3)
        registry.gauge("depth").set(2)
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(7.0)
        return registry

    def test_prometheus_golden(self):
        text = render_prometheus(self.golden_registry().snapshot())
        assert text == (
            "# TYPE depth gauge\n"
            "depth 2\n"
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.1"} 1\n'
            'latency_seconds_bucket{le="1"} 2\n'
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 7.55\n"
            "latency_seconds_count 3\n"
            "# HELP requests_total served requests\n"
            "# TYPE requests_total counter\n"
            'requests_total{method="slugger"} 3\n'
        )

    def test_prometheus_round_trip(self):
        snapshot = self.golden_registry().snapshot()
        samples = parse_prometheus_text(render_prometheus(snapshot))
        values = {(name, tuple(sorted(labels.items()))): value
                  for name, labels, value in samples}
        assert values[("requests_total", (("method", "slugger"),))] == 3.0
        assert values[("latency_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert values[("latency_seconds_count", ())] == 3.0

    def test_parser_handles_inf_and_escapes(self):
        samples = parse_prometheus_text(
            'x_info{value="a\\"b,c"} 1\nedge_bucket{le="+Inf"} 4\n'
        )
        assert samples[0][1] == {"value": 'a"b,c'}
        assert samples[1][2] == 4.0
        assert math.isfinite(samples[0][2])

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(TelemetryError):
            parse_prometheus_text("this is not exposition format")
        with pytest.raises(TelemetryError):
            parse_prometheus_text("metric{=} 1")
        with pytest.raises(TelemetryError):
            parse_prometheus_text("metric not-a-number")


class TestRunControlSeq:
    def test_seq_is_monotonic_per_control(self):
        events = []
        control = RunControl(on_progress=events.append)
        control.emit("a", x=1)
        control.emit("b")
        control.emit("a", x=2)
        assert [event["seq"] for event in events] == [0, 1, 2]
        assert events[0] == {"stage": "a", "seq": 0, "x": 1}


class TestEngineTelemetry:
    # An ER graph keeps the early iterations above the zero-threshold
    # heuristic, so the optimistic decide/apply shard path (and its
    # worker-registry shipping) actually runs in the parallel legs.
    GRAPH = staticmethod(lambda: erdos_renyi_graph(200, 0.05, seed=7))
    CONFIG = dict(iterations=4, seed=0)

    def run(self, workers, metrics=None, tracer=None):
        control = None
        if metrics is not None or tracer is not None:
            control = RunControl(metrics=metrics, tracer=tracer)
        execution = ExecutionConfig(workers=workers) if workers > 1 else None
        return Slugger(SluggerConfig(**self.CONFIG), execution=execution).summarize(
            self.GRAPH(), control=control
        )

    def test_summary_identical_with_telemetry_on_or_off(self):
        baseline = fingerprint(self.run(workers=1).summary)
        for workers in worker_counts():
            metrics = MetricsRegistry()
            tracer = Tracer()
            result = self.run(workers=workers, metrics=metrics, tracer=tracer)
            assert fingerprint(result.summary) == baseline, (
                f"telemetry perturbed the summary at workers={workers}"
            )

    def test_engine_counters_agree_across_worker_counts(self):
        per_worker = {}
        for workers in worker_counts():
            metrics = MetricsRegistry()
            self.run(workers=workers, metrics=metrics)
            snapshot = metrics.snapshot()
            per_worker[workers] = {
                name: snapshot[name]["series"][0]["value"]
                for name in ("slugger_iterations_total", "slugger_merges_total",
                             "slugger_final_cost")
            }
        values = list(per_worker.values())
        assert all(value == values[0] for value in values), per_worker

    def test_parallel_run_ships_shard_registries_and_spans(self):
        counts = [w for w in worker_counts() if w > 1]
        if not counts:
            pytest.skip("serial-only REPRO_TEST_WORKERS")
        metrics = MetricsRegistry()
        tracer = Tracer()
        self.run(workers=counts[0], metrics=metrics, tracer=tracer)
        snapshot = metrics.snapshot()
        # Shard workers built private registries; the parent merged them.
        assert "slugger_decide_shard_seconds" in snapshot
        shard_seconds = snapshot["slugger_decide_shard_seconds"]["series"][0]
        assert shard_seconds["count"] > 0
        assert snapshot["slugger_decide_groups_total"]["series"][0]["value"] > 0
        names = {span.name for span in tracer.sorted_spans()}
        assert {"iteration", "shingle", "group", "decide", "apply",
                "recost"} <= names
        shard_lanes = {span.lane for span in tracer.sorted_spans()
                       if span.name == "decide-shard"}
        assert shard_lanes, "no per-shard spans on the parent timeline"
        # The Chrome export of a sharded run loads as JSON.
        events = tracer.chrome_trace_events()
        json.dumps(events)
        assert any(e["ph"] == "X" and e["name"] == "decide-shard" for e in events)

    def test_phase_events_carry_span_timings(self):
        events = []
        metrics = MetricsRegistry()
        control = RunControl(on_progress=events.append, metrics=metrics)
        Slugger(SluggerConfig(**self.CONFIG)).summarize(
            self.GRAPH(), control=control
        )
        phase_events = [event for event in events if event["stage"] == "phases"]
        assert phase_events, "no per-phase progress events emitted"
        for event in phase_events:
            assert set(event["seconds"]) >= {"shingle", "group", "decide",
                                             "apply", "recost"}
            assert all(value >= 0.0 for value in event["seconds"].values())
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)


class TestServiceTelemetry:
    def test_telemetry_federates_service_store_and_caches(self, tmp_path):
        from repro.service import SummaryRequest, SummaryService

        graph = caveman_graph(4, 6, 0.05, seed=3)
        metrics = MetricsRegistry()
        with SummaryService(metrics=metrics,
                            summary_cache_dir=str(tmp_path / "summ")) as service:
            job = service.submit(SummaryRequest(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 2},
            ))
            job.wait()
            assert job.state.value == "done"
            snapshot = service.telemetry()
        assert snapshot["service_jobs_total"]["series"][0]["labels"] == {
            "method": "slugger", "outcome": "completed",
        }
        assert snapshot["service_jobs_submitted_total"]["series"][0]["value"] == 1.0
        assert snapshot["service_job_seconds"]["series"][0]["count"] == 1
        # Engine telemetry rode the caller-supplied registry.
        assert snapshot["slugger_iterations_total"]["series"][0]["value"] == 2.0
        # stats() federation: service, store, and summary-cache families.
        assert snapshot["repro_service_completed"]["series"][0]["value"] == 1.0
        assert "repro_graph_store_misses" in snapshot
        assert "repro_summary_cache_stores" in snapshot
        # The whole federated snapshot renders and parses.
        samples = parse_prometheus_text(render_prometheus(snapshot))
        assert len(samples) > 20

    def test_graph_cache_counters_federate(self, tmp_path):
        from repro.storage import GraphCache

        edges = tmp_path / "g.txt"
        edges.write_text("0 1\n1 2\n2 0\n")
        cache = GraphCache(tmp_path / "cache")
        cache.fetch_edge_list(edges)
        cache.fetch_edge_list(edges)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        registry = MetricsRegistry()
        ingest_stats(registry, stats, "repro_graph_cache")
        snapshot = registry.snapshot()
        assert snapshot["repro_graph_cache_hits"]["series"][0]["value"] == 1.0
