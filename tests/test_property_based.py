"""Property-based tests (hypothesis) for the core losslessness invariants.

The single most important contract of the library is exactness: whatever
graph goes in, every summarizer's output must decompress to exactly that
graph, and partial decompression must agree with full decompression.
These properties are exercised on randomly generated graphs.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import mosso_summarize, randomized_summarize, sags_summarize, sweg_summarize
from repro.core import Slugger, SluggerConfig
from repro.core.pruning import prune
from repro.graphs import Graph
from repro.model import FlatSummary, HierarchicalSummary, flat_to_hierarchical


# ----------------------------------------------------------------------
# Graph strategies
# ----------------------------------------------------------------------
@st.composite
def random_graphs(draw, max_nodes: int = 16, min_nodes: int = 2):
    """A random simple graph with up to ``max_nodes`` nodes."""
    num_nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    graph = Graph(nodes=range(num_nodes))
    possible_edges = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    chosen = draw(st.lists(st.sampled_from(possible_edges), unique=True, max_size=len(possible_edges))
                  ) if possible_edges else []
    for u, v in chosen:
        graph.add_edge(u, v)
    return graph


@st.composite
def random_groupings(draw, graph: Graph):
    """A random partition of the graph's nodes."""
    nodes = sorted(graph.nodes())
    num_groups = draw(st.integers(min_value=1, max_value=max(1, len(nodes))))
    assignment = {node: draw(st.integers(min_value=0, max_value=num_groups - 1)) for node in nodes}
    groups = {}
    for node, group in assignment.items():
        groups.setdefault(group, []).append(node)
    return list(groups.values())


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# Model-level properties
# ----------------------------------------------------------------------
@_SETTINGS
@given(data=st.data(), graph=random_graphs())
def test_flat_summary_is_lossless_for_any_grouping(data, graph):
    grouping = data.draw(random_groupings(graph))
    summary = FlatSummary.from_grouping(graph, grouping)
    summary.validate(graph)
    # Neighbor queries agree with the graph for every node.
    for node in graph.nodes():
        assert summary.neighbors(node) == set(graph.neighbor_set(node))


@_SETTINGS
@given(data=st.data(), graph=random_graphs())
def test_flat_to_hierarchical_preserves_cost_and_graph(data, graph):
    grouping = data.draw(random_groupings(graph))
    flat = FlatSummary.from_grouping(graph, grouping)
    hierarchical = flat_to_hierarchical(flat)
    hierarchical.validate(graph)
    assert hierarchical.cost() == flat.cost_eq11()


@_SETTINGS
@given(graph=random_graphs())
def test_trivial_hierarchical_summary_roundtrip(graph):
    summary = HierarchicalSummary.from_graph(graph)
    assert summary.decompress() == graph
    for node in graph.nodes():
        assert summary.neighbors(node) == set(graph.neighbor_set(node))


# ----------------------------------------------------------------------
# SLUGGER properties
# ----------------------------------------------------------------------
@_SETTINGS
@given(graph=random_graphs(max_nodes=14), seed=st.integers(min_value=0, max_value=10))
def test_slugger_is_lossless_on_random_graphs(graph, seed):
    config = SluggerConfig(iterations=3, seed=seed)
    result = Slugger(config).summarize(graph)
    result.summary.validate(graph)
    # Partial decompression agrees with the input graph as well.
    for node in graph.nodes():
        assert result.summary.neighbors(node) == set(graph.neighbor_set(node))


@_SETTINGS
@given(graph=random_graphs(max_nodes=14), seed=st.integers(min_value=0, max_value=5))
def test_slugger_cost_never_exceeds_trivial_encoding(graph, seed):
    result = Slugger(SluggerConfig(iterations=3, seed=seed)).summarize(graph)
    assert result.cost() <= graph.num_edges


@_SETTINGS
@given(graph=random_graphs(max_nodes=14), seed=st.integers(min_value=0, max_value=5))
def test_pruning_preserves_representation_and_cost(graph, seed):
    result = Slugger(SluggerConfig(iterations=3, seed=seed, prune=False)).summarize(graph)
    summary = result.summary
    cost_before = summary.cost()
    prune(graph, summary, rounds=2)
    summary.validate(graph)
    assert summary.cost() <= cost_before


@_SETTINGS
@given(graph=random_graphs(max_nodes=12), bound=st.integers(min_value=1, max_value=3))
def test_height_bound_is_respected(graph, bound):
    result = Slugger(SluggerConfig(iterations=3, seed=0, height_bound=bound)).summarize(graph)
    result.summary.validate(graph)
    assert result.summary.hierarchy.max_height() <= bound


# ----------------------------------------------------------------------
# Baseline properties
# ----------------------------------------------------------------------
@_SETTINGS
@given(graph=random_graphs(max_nodes=12), seed=st.integers(min_value=0, max_value=5))
def test_baselines_are_lossless_on_random_graphs(graph, seed):
    for method in (
        lambda: sweg_summarize(graph, iterations=2, seed=seed),
        lambda: randomized_summarize(graph, seed=seed),
        lambda: sags_summarize(graph, seed=seed),
        lambda: mosso_summarize(graph, seed=seed),
    ):
        summary = method()
        summary.validate(graph)
