"""Tests for the three pruning substeps (Sect. III-B4).

Besides the per-substep unit tests, the parallel section pins the PR's
central guarantee: pruning through the sharded executor layer is
**bit-identical** to the serial reference at every worker count —
substep 3's re-encode decisions are exact (never replayed) and applied
in canonical pair order.  ``REPRO_TEST_WORKERS`` (comma-separated
counts) restricts the sweep for the CI worker-matrix legs.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Slugger, SluggerConfig
from repro.core.pruning import (
    prune,
    prune_edgeless_supernodes,
    prune_single_edge_roots,
    reencode_root_pairs_flat,
)
from repro.engine import execution
from repro.engine.execution import ExecutionConfig
from repro.graphs import Graph, caveman_graph, complete_graph, nested_partition_graph
from repro.model import Hierarchy, HierarchicalSummary


def worker_counts():
    env = os.environ.get("REPRO_TEST_WORKERS")
    if env:
        return tuple(int(part) for part in env.split(","))
    return (1, 2, 4)


def _unpruned_summary(graph, iterations=6, seed=0):
    config = SluggerConfig(iterations=iterations, seed=seed, prune=False)
    return Slugger(config).summarize(graph).summary


class TestSubstep1:
    def test_removes_edgeless_internal_nodes(self):
        graph = complete_graph(4)
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(node) for node in graph.nodes()]
        inner = hierarchy.create_parent(leaves[:2])
        root = hierarchy.create_parent([inner, leaves[2], leaves[3]])
        summary = HierarchicalSummary(hierarchy)
        summary.add_p_edge(root, root)
        summary.validate(graph)
        removed = prune_edgeless_supernodes(summary)
        assert removed == 1
        assert not hierarchy.contains(inner)
        summary.validate(graph)
        assert summary.num_h_edges == 4

    def test_keeps_supernodes_with_edges(self):
        graph = complete_graph(4)
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(node) for node in graph.nodes()]
        inner = hierarchy.create_parent(leaves[:2])
        root = hierarchy.create_parent([inner, leaves[2], leaves[3]])
        summary = HierarchicalSummary(hierarchy)
        summary.add_p_edge(root, root)
        summary.add_n_edge(inner, leaves[2])
        graph.remove_edge(0, 2)
        graph.remove_edge(1, 2)
        summary.validate(graph)
        assert prune_edgeless_supernodes(summary) == 0
        assert hierarchy.contains(inner)

    def test_never_removes_leaves(self):
        graph = Graph(nodes=[0, 1])
        summary = HierarchicalSummary.from_graph(graph)
        assert prune_edgeless_supernodes(summary) == 0
        assert summary.hierarchy.num_supernodes == 2


class TestSubstep2:
    def test_pushes_single_edge_down(self):
        # Root {0,1} has its only edge towards leaf 2; removing the root
        # must add edges from its children to 2 instead.
        graph = Graph(edges=[(0, 2), (1, 2)])
        hierarchy = Hierarchy()
        leaves = {node: hierarchy.add_leaf(node) for node in (0, 1, 2)}
        root = hierarchy.create_parent([leaves[0], leaves[1]])
        summary = HierarchicalSummary(hierarchy)
        summary.add_p_edge(root, leaves[2])
        summary.validate(graph)
        cost_before = summary.cost()
        removed = prune_single_edge_roots(summary)
        assert removed == 1
        assert not hierarchy.contains(root)
        summary.validate(graph)
        assert summary.cost() < cost_before

    def test_opposite_sign_edges_cancel(self):
        # Root {0,1} has a positive blanket to 2, child {1} has a negative
        # correction: after pruning only the (0,2) edge should remain.
        graph = Graph(edges=[(0, 2)])
        graph.add_node(1)
        hierarchy = Hierarchy()
        leaves = {node: hierarchy.add_leaf(node) for node in (0, 1, 2)}
        root = hierarchy.create_parent([leaves[0], leaves[1]])
        summary = HierarchicalSummary(hierarchy)
        summary.add_p_edge(root, leaves[2])
        summary.add_n_edge(leaves[1], leaves[2])
        summary.validate(graph)
        removed = prune_single_edge_roots(summary)
        assert removed == 1
        summary.validate(graph)
        assert summary.has_p_edge(leaves[0], leaves[2])
        assert not summary.has_n_edge(leaves[1], leaves[2])
        assert summary.cost() == 1

    def test_roots_with_multiple_edges_untouched(self):
        graph = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
        hierarchy = Hierarchy()
        leaves = {node: hierarchy.add_leaf(node) for node in (0, 1, 2, 3)}
        root = hierarchy.create_parent([leaves[0], leaves[1]])
        summary = HierarchicalSummary(hierarchy)
        summary.add_p_edge(root, leaves[2])
        summary.add_p_edge(root, leaves[3])
        summary.validate(graph)
        assert prune_single_edge_roots(summary) == 0
        assert hierarchy.contains(root)


class TestSubstep3:
    def test_clique_reencoded_with_self_superedge(self):
        # A clique left encoded with leaf-level edges should collapse to a
        # single self-loop on the root after the flat re-encoding.
        graph = complete_graph(5)
        hierarchy = Hierarchy()
        leaves = [hierarchy.add_leaf(node) for node in graph.nodes()]
        root = hierarchy.create_parent(leaves)
        summary = HierarchicalSummary(hierarchy)
        for u, v in graph.edges():
            summary.add_p_edge(hierarchy.leaf_of(u), hierarchy.leaf_of(v))
        assert reencode_root_pairs_flat(graph, summary) == 1
        summary.validate(graph)
        assert summary.has_p_edge(root, root)
        assert summary.num_p_edges == 1

    def test_sparse_pairs_left_alone(self):
        graph = Graph(edges=[(0, 1)])
        summary = HierarchicalSummary.from_graph(graph)
        assert reencode_root_pairs_flat(graph, summary) == 0
        summary.validate(graph)


class TestFullPruning:
    def test_prune_never_breaks_losslessness(self, any_small_graph):
        summary = _unpruned_summary(any_small_graph)
        stats = prune(any_small_graph, summary, rounds=3)
        summary.validate(any_small_graph)
        assert set(stats) == {"substep1", "substep2", "substep3"}

    def test_prune_never_increases_cost(self, small_caveman, small_hierarchical, small_random):
        for graph in (small_caveman, small_hierarchical, small_random):
            summary = _unpruned_summary(graph)
            cost_before = summary.cost()
            prune(graph, summary)
            assert summary.cost() <= cost_before

    def test_prune_reduces_height_statistics(self):
        graph = nested_partition_graph((3, 3, 4), (0.02, 0.3, 0.95), seed=5)
        summary = _unpruned_summary(graph, iterations=8)
        height_before = summary.hierarchy.max_height()
        depth_before = summary.hierarchy.average_leaf_depth()
        prune(graph, summary)
        assert summary.hierarchy.max_height() <= height_before
        assert summary.hierarchy.average_leaf_depth() <= depth_before + 1e-9

    def test_zero_rounds_is_noop(self, small_caveman):
        summary = _unpruned_summary(small_caveman)
        cost_before = summary.cost()
        stats = prune(small_caveman, summary, rounds=0)
        assert summary.cost() == cost_before
        assert stats == {"substep1": 0, "substep2": 0, "substep3": 0}


# ----------------------------------------------------------------------
# Parallel pruning
# ----------------------------------------------------------------------
def _summary_fingerprint(summary):
    hierarchy = summary.hierarchy
    return (
        tuple(sorted(map(tuple, summary.p_edges()))),
        tuple(sorted(map(tuple, summary.n_edges()))),
        tuple(sorted(
            (child, hierarchy.parent(child))
            for child in hierarchy.supernodes()
            if hierarchy.parent(child) is not None
        )),
        tuple(sorted(hierarchy.roots())),
    )


def _leaf_encoded_cliques(communities=12, size=5):
    """Disjoint cliques left leaf-encoded: every pair re-encodes flat."""
    graph = Graph()
    hierarchy = Hierarchy()
    for community in range(communities):
        nodes = [community * size + offset for offset in range(size)]
        for node in nodes:
            graph.add_node(node)
        for i in range(size):
            for j in range(i + 1, size):
                graph.add_edge(nodes[i], nodes[j])
        hierarchy.create_parent([hierarchy.add_leaf(node) for node in nodes])
    summary = HierarchicalSummary(hierarchy)
    for u, v in graph.edges():
        summary.add_p_edge(hierarchy.leaf_of(u), hierarchy.leaf_of(v))
    return graph, summary


def _prune_execution(workers):
    return ExecutionConfig(workers=workers, prune_parallel_min_pairs=2,
                           min_parallel_items=2)


@pytest.mark.skipif(not execution.process_execution_available(),
                    reason="process execution needs the fork start method")
class TestParallelPruning:
    @pytest.mark.parametrize("fixture,seed", [
        (lambda: caveman_graph(30, 12, 0.05, seed=3), 11),
        (lambda: nested_partition_graph((3, 3, 4), (0.02, 0.3, 0.95), seed=5), 0),
    ])
    def test_prune_bit_identical_across_worker_counts(self, fixture, seed):
        graph = fixture()
        base = _unpruned_summary(graph, iterations=8, seed=seed)
        reference_stats = None
        fingerprints = set()
        for workers in worker_counts():
            summary = base.copy()
            profile = {}
            exe = None if workers == 1 else _prune_execution(workers)
            stats = prune(graph, summary, rounds=2, execution=exe, profile=profile)
            summary.validate(graph)
            if reference_stats is None:
                reference_stats = stats
            assert stats == reference_stats
            fingerprints.add(_summary_fingerprint(summary))
            if workers > 1:
                assert profile["parallel_rounds"] > 0
                assert profile["workers"] == workers
            else:
                assert profile["parallel_rounds"] == 0
        assert len(fingerprints) == 1

    def test_reencode_plans_applied_in_canonical_order(self):
        graph, reference = _leaf_encoded_cliques()
        assert reencode_root_pairs_flat(graph, reference) == 12
        reference.validate(graph)
        expected = _summary_fingerprint(reference)
        for workers in worker_counts():
            if workers == 1:
                continue
            graph2, summary = _leaf_encoded_cliques()
            profile = {}
            changed = reencode_root_pairs_flat(
                graph2, summary, execution=_prune_execution(workers), profile=profile
            )
            summary.validate(graph2)
            assert changed == 12
            assert profile["parallel_rounds"] == 1
            assert profile["pairs_reencoded"] == 12
            assert _summary_fingerprint(summary) == expected

    def test_profile_reports_substep_timings(self, small_caveman):
        summary = _unpruned_summary(small_caveman)
        profile = {}
        prune(small_caveman, summary, rounds=2, profile=profile)
        assert profile["rounds"] >= 1
        assert profile["parallel"] is False
        for key in ("edgeless_seconds", "single_edge_seconds", "reencode_seconds",
                    "reencode_index_seconds", "reencode_decide_seconds",
                    "reencode_apply_seconds"):
            assert profile[key] >= 0.0
        assert profile["pairs_scanned"] > 0

    def test_slugger_run_threads_execution_into_prune(self):
        graph = caveman_graph(20, 10, 0.05, seed=1)
        config = SluggerConfig(iterations=4, seed=0)
        serial = Slugger(config).summarize(graph)
        parallel = Slugger(config, execution=_prune_execution(2)).summarize(graph)
        assert _summary_fingerprint(parallel.summary) == _summary_fingerprint(serial.summary)
        assert parallel.prune_profile["rounds"] >= 1
        assert serial.prune_profile["parallel"] is False
