"""Equivalence matrix and zero-materialization tests for query serving.

Two guarantees are pinned here:

* every algorithm returns identical results over every provider shape —
  label-keyed :class:`Graph`, in-memory CSR, memory-mapped container,
  read-only :class:`CSRGraphView`, hierarchical summary (partial
  decompression), and flat summary — including string-labelled graphs;
* serving queries off a packed container materializes zero label-keyed
  graph nodes and thaws zero dense rows.

The frozen ``legacy_*`` implementations below are verbatim copies of the
pre-kernel label-keyed algorithms; the bit-identity tests compare the
rewritten shims against them directly.
"""

from __future__ import annotations

import json
import random
from collections import Counter, deque

import pytest

from repro import storage
from repro.algorithms import (
    as_neighbor_function,
    average_clustering,
    bfs_distances,
    bfs_order,
    connected_components,
    core_numbers,
    count_triangles,
    dfs_order,
    dijkstra_distances,
    label_propagation_communities,
    local_clustering_coefficients,
    local_triangle_counts,
    modularity,
    node_universe,
    pagerank,
    resolve_id_adjacency,
    shortest_path,
)
from repro.algorithms.query import QUERY_KINDS, run_query
from repro.baselines.common import FlatGroupingState
from repro.cli import main
from repro.core import Slugger, SluggerConfig
from repro.core.state import SluggerState
from repro.graphs import CSRGraphView, Graph, caveman_graph, erdos_renyi_graph
from repro.graphs.dense import DenseAdjacency
from repro.graphs.io import write_edge_list
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary
from repro.service import SummaryService
from repro.storage import GraphCache
from repro.utils.rng import ensure_rng


# ----------------------------------------------------------------------
# Fixture graphs
# ----------------------------------------------------------------------
def _bridged_caveman() -> Graph:
    graph = caveman_graph(3, 5)
    graph.add_edge(4, 5)
    graph.add_edge(9, 10)
    return graph


def _string_graph() -> Graph:
    """A deterministic string-labelled graph (exercises repr ordering)."""
    rnd = random.Random(3)
    names = [f"node-{i}" for i in range(40)]
    graph = Graph(nodes=names)
    while graph.num_edges < 120:
        u, v = rnd.choice(names), rnd.choice(names)
        if u != v:
            graph.add_edge(u, v)
    return graph


@pytest.fixture(params=["caveman", "er", "strings"])
def pinned_graph(request) -> Graph:
    if request.param == "caveman":
        return _bridged_caveman()
    if request.param == "er":
        return erdos_renyi_graph(48, 0.1, seed=7)
    return _string_graph()


def _provider_matrix(graph, tmp_path):
    """Every provider shape the algorithms must agree on."""
    csr = DenseAdjacency.from_graph(graph).freeze()
    container = tmp_path / "graph.slg"
    storage.pack(graph, container)
    stored = storage.load(container)
    hierarchical = Slugger(SluggerConfig(iterations=4, seed=0)).summarize(graph).summary
    nodes = graph.nodes()
    flat = FlatSummary.from_grouping(
        graph, [nodes[i:i + 2] for i in range(0, len(nodes), 2)]
    )
    return {
        "csr": csr,
        "view": CSRGraphView(csr),
        "mapped": stored.csr(),
        "stored": stored,
        "hierarchical": hierarchical,
        "flat": flat,
    }


# ----------------------------------------------------------------------
# Frozen legacy implementations (verbatim pre-kernel code)
# ----------------------------------------------------------------------
def legacy_pagerank(provider_graph, damping=0.85, iterations=20):
    nodes = provider_graph.nodes()
    if not nodes:
        return {}
    neighbors = lambda node: set(provider_graph.neighbor_set(node))  # noqa: E731
    num_nodes = len(nodes)
    scores = {node: 1.0 / num_nodes for node in nodes}
    for _ in range(iterations):
        incoming = {node: 0.0 for node in nodes}
        for node in nodes:
            adjacent = neighbors(node)
            if not adjacent:
                continue
            share = scores[node] / len(adjacent)
            for neighbor in adjacent:
                incoming[neighbor] += share
        total_flow = 0.0
        for node in nodes:
            incoming[node] *= damping
            total_flow += incoming[node]
        leak = (1.0 - total_flow) / num_nodes
        scores = {node: incoming[node] + leak for node in nodes}
    return scores


def legacy_bfs_order(graph, source):
    neighbors = graph.neighbor_set
    order, seen, queue = [], {source}, deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in sorted(neighbors(node), key=repr):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return order


def legacy_dfs_order(graph, source):
    neighbors = graph.neighbor_set
    order, seen, stack = [], set(), [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        for neighbor in sorted(neighbors(node), key=repr, reverse=True):
            if neighbor not in seen:
                stack.append(neighbor)
    return order


def legacy_count_triangles(graph):
    cache = {}

    def cached(node):
        stored = cache.get(node)
        if stored is None:
            stored = set(graph.neighbor_set(node))
            cache[node] = stored
        return stored

    corner_count = 0
    for node in graph.nodes():
        adjacent = cached(node)
        for neighbor in adjacent:
            corner_count += len(adjacent & cached(neighbor))
    return corner_count // 6


def legacy_local_triangle_counts(graph):
    cache = {}

    def cached(node):
        stored = cache.get(node)
        if stored is None:
            stored = set(graph.neighbor_set(node))
            cache[node] = stored
        return stored

    counts = {}
    for node in graph.nodes():
        adjacent = cached(node)
        total = 0
        for neighbor in adjacent:
            total += len(adjacent & cached(neighbor))
        counts[node] = total // 2
    return counts


def legacy_core_numbers(graph):
    import heapq

    adjacency = {node: set(graph.neighbor_set(node)) for node in graph.nodes()}
    degrees = {node: len(nbrs) for node, nbrs in adjacency.items()}
    heap = [(degree, repr(node), node) for node, degree in degrees.items()]
    heapq.heapify(heap)
    removed, cores, current = set(), {}, 0
    while heap:
        degree, _, node = heapq.heappop(heap)
        if node in removed or degree != degrees[node]:
            continue
        current = max(current, degree)
        cores[node] = current
        removed.add(node)
        for neighbor in adjacency[node]:
            if neighbor in removed:
                continue
            degrees[neighbor] -= 1
            heapq.heappush(heap, (degrees[neighbor], repr(neighbor), neighbor))
    return cores


def legacy_local_clustering(graph, node):
    nbrs = list(graph.neighbor_set(node))
    degree = len(nbrs)
    if degree < 2:
        return 0.0
    nbr_set = set(nbrs)
    links = 0
    for index, u in enumerate(nbrs):
        u_neighbors = graph.neighbor_set(u)
        for v in nbrs[index + 1:]:
            if v in u_neighbors and v in nbr_set:
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def legacy_label_propagation(graph, max_rounds=20, seed=0):
    neighbors = graph.neighbor_set
    rng = ensure_rng(seed)
    nodes = sorted(graph.nodes(), key=repr)
    labels = {node: index for index, node in enumerate(nodes)}
    for _ in range(max_rounds):
        changed = False
        order = list(nodes)
        rng.shuffle(order)
        for node in order:
            neighbor_labels = Counter(labels[nbr] for nbr in neighbors(node))
            if not neighbor_labels:
                continue
            best_count = max(neighbor_labels.values())
            best_labels = sorted(
                label for label, count in neighbor_labels.items() if count == best_count
            )
            new_label = best_labels[rng.randrange(len(best_labels))]
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break
    groups = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    return sorted(groups.values(), key=len, reverse=True)


def legacy_modularity(graph, communities):
    neighbors = graph.neighbor_set
    nodes = graph.nodes()
    degree = {node: len(neighbors(node)) for node in nodes}
    two_m = sum(degree.values())
    if two_m == 0:
        return 0.0
    community_of = {}
    for index, community in enumerate(communities):
        for node in community:
            community_of[node] = index
    intra = 0
    for node in nodes:
        for neighbor in neighbors(node):
            if community_of.get(node) == community_of.get(neighbor):
                intra += 1
    quality = intra / two_m
    for community in communities:
        community_degree = sum(degree.get(node, 0) for node in community)
        quality -= (community_degree / two_m) ** 2
    return quality


def legacy_dijkstra_distances(graph, source, weight=None):
    import heapq

    weight_of = weight or (lambda _u, _v: 1.0)
    neighbors = graph.neighbor_set
    distances = {source: 0.0}
    settled = set()
    heap = [(0.0, 0, source)]
    counter = 0
    while heap:
        distance, _tie, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor in neighbors(node):
            candidate = distance + weight_of(node, neighbor)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return distances


# ----------------------------------------------------------------------
# Bit-identity pins against the frozen legacy implementations
# ----------------------------------------------------------------------
class TestLegacyBitIdentity:
    def test_pagerank_identical_including_key_order(self, pinned_graph):
        ours, legacy = pagerank(pinned_graph), legacy_pagerank(pinned_graph)
        assert list(ours) == list(legacy)
        assert all(ours[node] == legacy[node] for node in legacy)

    def test_traversals_identical(self, pinned_graph):
        source = pinned_graph.nodes()[0]
        assert bfs_order(pinned_graph, source) == legacy_bfs_order(pinned_graph, source)
        assert dfs_order(pinned_graph, source) == legacy_dfs_order(pinned_graph, source)

    def test_triangles_identical(self, pinned_graph):
        assert count_triangles(pinned_graph) == legacy_count_triangles(pinned_graph)
        assert local_triangle_counts(pinned_graph) == legacy_local_triangle_counts(pinned_graph)

    def test_core_numbers_identical(self, pinned_graph):
        assert core_numbers(pinned_graph) == legacy_core_numbers(pinned_graph)

    def test_clustering_identical(self, pinned_graph):
        ours = local_clustering_coefficients(pinned_graph)
        legacy = {
            node: legacy_local_clustering(pinned_graph, node)
            for node in pinned_graph.nodes()
        }
        assert ours == legacy

    def test_label_propagation_rng_stream_identical(self, pinned_graph):
        ours = label_propagation_communities(pinned_graph, seed=5)
        legacy = legacy_label_propagation(pinned_graph, seed=5)
        assert ours == legacy

    def test_modularity_identical(self, pinned_graph):
        communities = legacy_label_propagation(pinned_graph, seed=5)
        assert modularity(pinned_graph, communities) == legacy_modularity(
            pinned_graph, communities
        )

    def test_dijkstra_identical(self, pinned_graph):
        source = pinned_graph.nodes()[0]
        assert dijkstra_distances(pinned_graph, source) == legacy_dijkstra_distances(
            pinned_graph, source
        )

    def test_components_content_equal(self, pinned_graph):
        ours = sorted(
            (sorted(component, key=repr) for component in connected_components(pinned_graph)),
            key=repr,
        )
        # Legacy discovery order was hash-seed dependent; contents were not.
        remaining = set(pinned_graph.nodes())
        legacy = []
        while remaining:
            start = remaining.pop()
            component, queue = {start}, deque([start])
            while queue:
                node = queue.popleft()
                for neighbor in pinned_graph.neighbor_set(node):
                    if neighbor in remaining:
                        remaining.discard(neighbor)
                        component.add(neighbor)
                        queue.append(neighbor)
            legacy.append(component)
        assert ours == sorted((sorted(c, key=repr) for c in legacy), key=repr)


# ----------------------------------------------------------------------
# Provider equivalence matrix
# ----------------------------------------------------------------------
class TestProviderMatrix:
    def test_every_provider_agrees_with_the_graph(self, pinned_graph, tmp_path):
        graph = pinned_graph
        source = graph.nodes()[0]
        communities = label_propagation_communities(graph, seed=5)
        baseline = {
            "pagerank": pagerank(graph),
            "bfs_order": bfs_order(graph, source),
            "bfs_distances": bfs_distances(graph, source),
            "dfs_order": dfs_order(graph, source),
            "components": connected_components(graph),
            "triangles": count_triangles(graph),
            "local_triangles": local_triangle_counts(graph),
            "cores": core_numbers(graph),
            "clustering": local_clustering_coefficients(graph),
            "average_clustering": average_clustering(graph),
            "communities": communities,
            "modularity": modularity(graph, communities),
            "dijkstra": dijkstra_distances(graph, source),
        }
        for name, provider in _provider_matrix(graph, tmp_path).items():
            note = f"provider {name}"
            # The flat summary's node universe is ``list(group_of)`` — a
            # permutation of graph insertion order for string labels — so
            # order-sensitive float accumulations agree only up to ULPs
            # there (exactly as the legacy label-keyed path did).  Every
            # other provider preserves the universe and is bit-identical.
            if name == "flat" and isinstance(graph.nodes()[0], str):
                assert pagerank(provider) == pytest.approx(baseline["pagerank"]), note
                assert average_clustering(provider) == pytest.approx(
                    baseline["average_clustering"]
                ), note
                assert modularity(provider, communities) == pytest.approx(
                    baseline["modularity"]
                ), note
                assert sorted(map(frozenset, connected_components(provider))) == sorted(
                    map(frozenset, baseline["components"])
                ), note
            else:
                assert pagerank(provider) == baseline["pagerank"], note
                assert average_clustering(provider) == baseline["average_clustering"], note
                assert modularity(provider, communities) == baseline["modularity"], note
                assert connected_components(provider) == baseline["components"], note
            assert bfs_order(provider, source) == baseline["bfs_order"], note
            assert bfs_distances(provider, source) == baseline["bfs_distances"], note
            assert dfs_order(provider, source) == baseline["dfs_order"], note
            assert count_triangles(provider) == baseline["triangles"], note
            assert local_triangle_counts(provider) == baseline["local_triangles"], note
            assert core_numbers(provider) == baseline["cores"], note
            assert local_clustering_coefficients(provider) == baseline["clustering"], note
            assert label_propagation_communities(provider, seed=5) == baseline["communities"], note
            assert dijkstra_distances(provider, source) == baseline["dijkstra"], note
            path = shortest_path(provider, source, graph.nodes()[-1])
            expected = shortest_path(graph, source, graph.nodes()[-1])
            if expected is None:
                assert path is None, note
            else:
                assert path is not None and len(path) == len(expected), note

    def test_node_universe_and_neighbor_function_cover_substrates(self, tmp_path):
        graph = _bridged_caveman()
        for provider in _provider_matrix(graph, tmp_path).values():
            assert sorted(node_universe(provider)) == sorted(graph.nodes())
            neighbors = as_neighbor_function(provider)
            for node in graph.nodes():
                assert set(neighbors(node)) == graph.neighbor_set(node)

    def test_live_neighbor_set_for_graphs(self):
        graph = _bridged_caveman()
        neighbors = as_neighbor_function(graph)
        # The Graph branch hands out the live internal set: no copy per query.
        assert neighbors(0) is graph.neighbor_set(0)

    def test_resolver_rejects_junk(self):
        with pytest.raises(TypeError):
            resolve_id_adjacency(42)
        with pytest.raises(TypeError):
            as_neighbor_function({"not": "a graph"})


# ----------------------------------------------------------------------
# Zero-materialization serving guarantees
# ----------------------------------------------------------------------
class TestZeroMaterialization:
    def test_query_over_container_materializes_nothing(self, tmp_path):
        graph = erdos_renyi_graph(48, 0.1, seed=7)
        container = tmp_path / "graph.slg"
        storage.pack(graph, container)
        stored = storage.load(container)
        for kind in QUERY_KINDS:
            result = run_query(stored, kind, source=0, top=5)
            assert result.kind == kind
        assert stored.materializations == 0
        # The dense overlay is never even constructed by the query path.
        assert stored._dense is None

    def test_view_queries_thaw_zero_rows(self):
        graph = erdos_renyi_graph(48, 0.1, seed=7)
        view = CSRGraphView(DenseAdjacency.from_graph(graph).freeze())
        for kind in QUERY_KINDS:
            run_query(view, kind, source=0, top=5)
        assert view.thawed_rows == 0

    def test_cache_hit_serves_view_without_materializing(self, tmp_path):
        graph = _bridged_caveman()
        edge_list = tmp_path / "graph.txt"
        write_edge_list(graph, edge_list)
        cache = GraphCache(tmp_path / "cache")
        miss = cache.fetch_edge_list(edge_list, materialize=False)
        assert not miss.hit
        hit = cache.fetch_edge_list(edge_list, materialize=False)
        assert hit.hit
        assert isinstance(hit.graph, CSRGraphView)
        # The hit view must be bit-identical to the parsed graph it was
        # packed from (the text round-trip can permute node insertion
        # order relative to the in-memory original, so compare to the
        # miss's parse, not to ``graph``).
        assert pagerank(hit.graph) == pagerank(miss.graph)
        assert hit.stored.materializations == 0
        # Default keeps the historical materializing contract.
        materialized = cache.fetch_edge_list(edge_list)
        assert isinstance(materialized.graph, Graph)
        assert not isinstance(materialized.graph, CSRGraphView)

    def test_view_is_read_only(self):
        from repro.exceptions import InvalidStateError

        view = CSRGraphView(DenseAdjacency.from_graph(_bridged_caveman()).freeze())
        with pytest.raises(InvalidStateError):
            view.add_edge(0, 99)
        with pytest.raises(InvalidStateError):
            view.remove_node(0)


# ----------------------------------------------------------------------
# from_substrate initialization
# ----------------------------------------------------------------------
class TestFromSubstrate:
    def test_summary_from_substrate_matches_from_graph(self, pinned_graph):
        csr = DenseAdjacency.from_graph(pinned_graph).freeze()
        from_graph = HierarchicalSummary.from_graph(pinned_graph)
        from_substrate = HierarchicalSummary.from_substrate(csr.index, csr)
        assert from_substrate.hierarchy.subnodes() == from_graph.hierarchy.subnodes()
        assert set(from_substrate.p_edges()) == set(from_graph.p_edges())
        assert from_substrate.cost() == from_graph.cost()

    def test_summary_neighbor_ids_partial_decompression(self, pinned_graph):
        summary = Slugger(SluggerConfig(iterations=4, seed=0)).summarize(pinned_graph).summary
        index = resolve_id_adjacency(pinned_graph).index
        labels = index.labels()
        ids = index.ids()
        for node in pinned_graph.nodes():
            expected = sorted(ids[x] for x in summary.neighbors(node))
            assert summary.neighbor_ids(ids[node]) == expected, node
        assert [labels[i] for i in range(len(labels))] == summary.hierarchy.subnodes()

    def test_slugger_state_from_substrate_is_consistent_and_cold(self, tmp_path):
        graph = _bridged_caveman()
        container = tmp_path / "graph.slg"
        storage.pack(graph, container)
        stored = storage.load(container)
        csr = stored.csr()
        state = SluggerState.from_substrate(csr.index, csr)
        state.check_consistency()
        assert state.dense.thawed_nodes == 0
        assert state.graph.thawed_rows == 0
        assert stored.materializations == 0
        reference = SluggerState(graph)
        assert state.total_cost() == reference.total_cost()
        assert state.roots == reference.roots

    def test_flat_state_from_substrate_matches_graph_built(self, tmp_path):
        graph = _bridged_caveman()
        container = tmp_path / "graph.slg"
        storage.pack(graph, container)
        stored = storage.load(container)
        csr = stored.csr()
        state = FlatGroupingState.from_substrate(csr.index, csr)
        reference = FlatGroupingState(graph)
        assert state.total_cost() == reference.total_cost()
        assert state.group_of == reference.group_of
        assert state.dense.thawed_nodes == 0
        assert stored.materializations == 0

    def test_summarize_over_view_is_bit_identical(self, tmp_path):
        graph = erdos_renyi_graph(48, 0.1, seed=7)
        container = tmp_path / "graph.slg"
        storage.pack(graph, container)
        stored = storage.load(container)
        config = SluggerConfig(iterations=4, seed=0)
        over_view = Slugger(config).summarize(stored.view(), resources=stored)
        over_graph = Slugger(config).summarize(graph)
        assert over_view.summary.cost() == over_graph.summary.cost()
        assert set(over_view.summary.p_edges()) == set(over_graph.summary.p_edges())
        assert set(over_view.summary.n_edges()) == set(over_graph.summary.n_edges())
        assert stored.materializations == 0


# ----------------------------------------------------------------------
# Query dispatch, CLI, and service serving paths
# ----------------------------------------------------------------------
class TestQueryServing:
    def test_run_query_validates(self):
        graph = _bridged_caveman()
        with pytest.raises(ValueError):
            run_query(graph, "nonsense")
        with pytest.raises(ValueError):
            run_query(graph, "bfs")  # bfs requires a source

    def test_cli_query_container(self, tmp_path, capsys):
        graph = _bridged_caveman()
        edge_list = tmp_path / "graph.txt"
        container = tmp_path / "graph.slg"
        write_edge_list(graph, edge_list)
        assert main(["pack", "--input", str(edge_list), "--output", str(container)]) == 0
        capsys.readouterr()
        assert main(["query", "pagerank", "--container", str(container),
                     "--top", "5", "--json"]) == 0
        output = capsys.readouterr().out
        payload = json.loads(output.splitlines()[-1])
        assert payload["num_nodes"] == graph.num_nodes
        assert len(payload["ranking"]) == 5
        ranked = {int(node): score for node, score in payload["ranking"]}
        # The container was packed from the parsed edge list, whose node
        # insertion order need not match the in-memory original; compare
        # against the parse for bit-identity.
        from repro.graphs.io import read_edge_list

        expected = pagerank(read_edge_list(edge_list))
        assert all(expected[node] == score for node, score in ranked.items())
        assert "materialized_graphs=0" in output

    def test_cli_query_through_cache(self, tmp_path, capsys):
        graph = _bridged_caveman()
        edge_list = tmp_path / "graph.txt"
        write_edge_list(graph, edge_list)
        cache_dir = str(tmp_path / "cache")
        for expected_origin in ("miss", "hit"):
            assert main(["query", "bfs", "--input", str(edge_list),
                         "--cache-dir", cache_dir, "--source", "0"]) == 0
            output = capsys.readouterr().out
            assert expected_origin in output
            assert f"reached={len(bfs_order(graph, 0))}" in output
        assert main(["query", "bfs", "--input", str(edge_list),
                     "--cache-dir", cache_dir, "--source", "no-such-node"]) == 1

    def test_service_query_reuses_interned_substrate(self):
        graph = _bridged_caveman()
        with SummaryService() as service:
            service.register_graph("g", graph)
            by_key = service.query("g", "pagerank", top=3)
            by_graph = service.query(graph, "pagerank", top=3)
            assert by_key == by_graph
            expected = sorted(
                pagerank(graph).items(), key=lambda pair: (-pair[1], repr(pair[0]))
            )[:3]
            assert by_key.value["ranking"] == [[node, score] for node, score in expected]
            stats = service.stats()["store"]
            assert stats["misses"] == 1  # one substrate build, shared by both queries
