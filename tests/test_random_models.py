"""Tests for the additional random-graph models (R-MAT, small world, configuration, HRG)."""

import pytest

from repro.exceptions import InvalidGraphError
from repro.graphs import (
    configuration_model_graph,
    hierarchical_random_graph,
    rmat_graph,
    watts_strogatz_graph,
)
from repro.graphs.properties import global_clustering_coefficient


class TestRmat:
    def test_size_and_simplicity(self):
        graph = rmat_graph(scale=6, edge_factor=4, seed=0)
        assert graph.num_nodes == 64
        assert 0 < graph.num_edges <= 4 * 64
        assert all(u != v for u, v in graph.edges())

    def test_deterministic_per_seed(self):
        assert rmat_graph(5, 4, seed=3).edge_set() == rmat_graph(5, 4, seed=3).edge_set()
        assert rmat_graph(5, 4, seed=3).edge_set() != rmat_graph(5, 4, seed=4).edge_set()

    def test_skewed_probabilities_create_hubs(self):
        graph = rmat_graph(scale=7, edge_factor=8, seed=1)
        degrees = sorted((graph.degree(node) for node in graph.nodes()), reverse=True)
        # The top node should be far above the mean degree (heavy tail).
        mean_degree = sum(degrees) / len(degrees)
        assert degrees[0] > 2.5 * mean_degree

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(InvalidGraphError):
            rmat_graph(4, 2, probabilities=(0.5, 0.2, 0.2, 0.2))
        with pytest.raises(InvalidGraphError):
            rmat_graph(4, 2, probabilities=(0.5, 0.5))


class TestWattsStrogatz:
    def test_ring_lattice_without_rewiring(self):
        graph = watts_strogatz_graph(12, 4, 0.0)
        assert graph.num_nodes == 12
        assert graph.num_edges == 12 * 2  # n * k / 2
        assert all(graph.degree(node) == 4 for node in graph.nodes())

    def test_rewiring_keeps_edge_count(self):
        graph = watts_strogatz_graph(30, 4, 0.3, seed=0)
        assert graph.num_edges == 60

    def test_lattice_is_highly_clustered(self):
        lattice = watts_strogatz_graph(40, 6, 0.0)
        assert global_clustering_coefficient(lattice) > 0.5

    def test_invalid_parameters(self):
        with pytest.raises(InvalidGraphError):
            watts_strogatz_graph(10, 3, 0.1)  # odd k
        with pytest.raises(InvalidGraphError):
            watts_strogatz_graph(4, 6, 0.1)  # k >= n


class TestConfigurationModel:
    def test_degrees_bounded_by_prescription(self):
        degrees = [3, 3, 2, 2, 1, 1]
        graph = configuration_model_graph(degrees, seed=0)
        assert graph.num_nodes == len(degrees)
        for node, degree in enumerate(degrees):
            assert graph.degree(node) <= degree

    def test_empty_sequence(self):
        assert configuration_model_graph([]).num_nodes == 0

    def test_odd_sum_rejected(self):
        with pytest.raises(InvalidGraphError):
            configuration_model_graph([3, 2])

    def test_negative_degree_rejected(self):
        with pytest.raises(InvalidGraphError):
            configuration_model_graph([2, -1, 1])

    def test_regular_sequence_is_nearly_realized(self):
        degrees = [4] * 30
        graph = configuration_model_graph(degrees, seed=1)
        realized = sum(graph.degree(node) for node in graph.nodes())
        assert realized >= 0.8 * sum(degrees)


class TestHierarchicalRandomGraph:
    def test_size(self):
        graph = hierarchical_random_graph(depth=2, branching=3, leaves_per_block=4, seed=0)
        assert graph.num_nodes == 9 * 4

    def test_nested_density_gradient(self):
        graph = hierarchical_random_graph(
            depth=2, branching=2, leaves_per_block=8,
            top_probability=0.02, bottom_probability=0.8, seed=0,
        )
        # Density inside a lowest block must exceed density across the two
        # top-level halves — the hallmark of hierarchical organisation.
        block = list(range(8))
        within_block = sum(
            1 for i in block for j in block if i < j and graph.has_edge(i, j)
        ) / (8 * 7 / 2)
        half = graph.num_nodes // 2
        across = sum(
            1 for i in range(half) for j in range(half, graph.num_nodes) if graph.has_edge(i, j)
        ) / (half * half)
        assert within_block > across

    def test_deterministic_per_seed(self):
        first = hierarchical_random_graph(2, 2, 3, seed=5)
        second = hierarchical_random_graph(2, 2, 3, seed=5)
        assert first.edge_set() == second.edge_set()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            hierarchical_random_graph(0)
        with pytest.raises(ValueError):
            hierarchical_random_graph(2, top_probability=1.5)
