"""Tests for JSON serialization of summaries."""

from __future__ import annotations

import json

import pytest

from repro.core import Slugger, SluggerConfig
from repro.exceptions import GraphFormatError
from repro.graphs import caveman_graph, erdos_renyi_graph
from repro.model import (
    FlatSummary,
    load_flat_summary,
    load_hierarchical_summary,
    save_flat_summary,
    save_hierarchical_summary,
)


class TestHierarchicalSerialization:
    def test_round_trip_preserves_graph(self, tmp_path):
        graph = caveman_graph(4, 5, 0.1, seed=2)
        summary = Slugger(SluggerConfig(iterations=5, seed=0)).summarize(graph).summary
        path = tmp_path / "summary.json"
        save_hierarchical_summary(summary, path)
        loaded = load_hierarchical_summary(path)
        loaded.validate(graph)
        assert loaded.cost() == summary.cost()
        assert loaded.num_h_edges == summary.num_h_edges

    def test_round_trip_trivial_summary(self, tmp_path):
        graph = erdos_renyi_graph(20, 0.2, seed=1)
        summary = Slugger(SluggerConfig(iterations=1, seed=0, prune=False)).summarize(graph).summary
        path = tmp_path / "trivial.json"
        save_hierarchical_summary(summary, path)
        load_hierarchical_summary(path).validate(graph)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(GraphFormatError):
            load_hierarchical_summary(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            load_hierarchical_summary(path)


class TestFlatSerialization:
    def test_round_trip(self, tmp_path):
        graph = caveman_graph(3, 4, 0.0, seed=0)
        groups = [[node for node in graph.nodes() if node // 4 == block] for block in range(3)]
        summary = FlatSummary.from_grouping(graph, groups)
        path = tmp_path / "flat.json"
        save_flat_summary(summary, path)
        loaded = load_flat_summary(path)
        loaded.validate(graph)
        assert loaded.cost_eq11() == summary.cost_eq11()
        assert loaded.superedges == summary.superedges

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro/hierarchical-summary/v1"}))
        with pytest.raises(GraphFormatError):
            load_flat_summary(path)
