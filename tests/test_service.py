"""Tests for the service layer: sessions, jobs, warm pools, determinism.

The load-bearing guarantee: for a fixed seed a request's summary is
**bit-identical** whether it runs via one-shot ``engine.run``, a single
warm-service job, a process-mode worker, or eight concurrent mixed-method
submissions.  On top of that the suite covers the job lifecycle (FIFO
ordering, cancellation before and mid-run, progress-event monotonicity),
graph-store interning, request validation/serialization, the bounded
queue, and the executor-teardown guarantee the warm pools rely on.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import engine
from repro.baselines.greedy import greedy_summarize
from repro.engine.execution import ProcessShardExecutor, process_execution_available
from repro.engine.hooks import RunControl
from repro.exceptions import (
    ConfigurationError,
    JobCancelled,
    ServiceClosedError,
    ServiceError,
    ServiceSaturatedError,
)
from repro.graphs import Graph, caveman_graph, erdos_renyi_graph
from repro.service import (
    GraphStore,
    JobState,
    SummaryRequest,
    SummaryService,
    default_service,
)

# Captured from serial engine.run (iterations=5, seed=0) — the same pins
# test_execution.py holds; every serving path must reproduce them.
CAVEMAN_SLUGGER_PIN = (332, 133, 7, 192)
CAVEMAN_SWEG_COST = 327

SLUGGER_OPTIONS = {"iterations": 5}


def caveman_fixture() -> Graph:
    return caveman_graph(20, 10, 0.05, seed=1)


def fingerprint(summary):
    record = [summary.cost()]
    for attribute in ("num_p_edges", "num_n_edges", "num_h_edges"):
        record.append(getattr(summary, attribute, None))
    edges = getattr(summary, "p_edges", None)
    if callable(edges):
        record.append(tuple(sorted(map(tuple, summary.p_edges()))))
        record.append(tuple(sorted(map(tuple, summary.n_edges()))))
    else:
        record.append(tuple(sorted(map(tuple, summary.superedges))))
        record.append(tuple(sorted(map(tuple, summary.corrections_plus))))
        record.append(tuple(sorted(map(tuple, summary.corrections_minus))))
    return tuple(record)


def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


@engine.register
class _GatedSummarizer(engine.Summarizer):
    """Test summarizer that blocks on a per-seed gate (for queue tests)."""

    name = "svc-test-gated"

    #: seed → threading.Event released by the test.
    gates = {}
    #: Seeds in the order their runs started.
    started = []

    def _run(self, graph, seed):
        type(self).started.append(seed)
        gate = type(self).gates.get(seed)
        if gate is not None:
            assert gate.wait(30), f"gate for seed {seed} never released"
        return greedy_summarize(graph, max_merges=0), [], {}


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
class TestSummaryRequest:
    def test_validation(self):
        graph = caveman_fixture()
        with pytest.raises(ConfigurationError):
            SummaryRequest(method="", graph=graph)
        with pytest.raises(ConfigurationError):
            SummaryRequest(method="slugger")  # no graph at all
        with pytest.raises(ConfigurationError):
            SummaryRequest(method="slugger", graph=graph, graph_key="x")
        with pytest.raises(ConfigurationError):
            SummaryRequest(method="slugger", graph="not a graph")
        with pytest.raises(ConfigurationError):
            SummaryRequest(method="slugger", graph=graph, options=[1, 2])

    def test_options_are_frozen_copies(self):
        options = {"iterations": 5}
        request = SummaryRequest(method="slugger", graph=caveman_fixture(),
                                 options=options)
        options["iterations"] = 99
        assert request.options["iterations"] == 5

    def test_serialization_round_trip(self):
        request = SummaryRequest(
            method="sweg", graph_key="cave", seed=3,
            options={"iterations": 7},
            execution=engine.ExecutionConfig(workers=2), tag="t",
        )
        record = request.to_dict()
        rebuilt = SummaryRequest.from_dict(record)
        assert rebuilt.method == "sweg"
        assert rebuilt.graph_key == "cave"
        assert rebuilt.seed == 3
        assert rebuilt.options == {"iterations": 7}
        assert rebuilt.execution == request.execution
        assert rebuilt.tag == "t"

    def test_summarizer_requests_are_not_serializable(self):
        request = SummaryRequest(
            summarizer=engine.create("slugger"), graph=caveman_fixture()
        )
        assert request.method == "slugger"
        assert not request.serializable
        with pytest.raises(ConfigurationError):
            request.to_dict()

    def test_from_dict_rejects_unknown_execution_fields(self):
        with pytest.raises(ConfigurationError):
            SummaryRequest.from_dict(
                {"method": "slugger", "graph_key": "g",
                 "execution": {"workers": 2, "bogus": 1}}
            )

    def test_from_dict_rejects_unknown_record_fields(self):
        # A top-level 'iterations' (belongs under 'options') must fail
        # loudly instead of silently running with defaults.
        with pytest.raises(ConfigurationError, match="iterations"):
            SummaryRequest.from_dict(
                {"method": "slugger", "graph_key": "g", "iterations": 10}
            )


# ----------------------------------------------------------------------
# Graph store
# ----------------------------------------------------------------------
class TestGraphStore:
    def test_interning_hits_and_identity(self):
        store = GraphStore()
        graph = caveman_fixture()
        first = store.intern(graph)
        second = store.intern(graph)
        assert first is second
        assert first.dense() is second.dense()
        assert first.csr() is second.csr()
        stats = store.stats()
        assert stats == {"hits": 1, "misses": 1, "graphs": 1, "named": 0,
                         "generation": 1, "prefetched": 0, "packed": 0,
                         "prefetch_errors": 0, "prefetch_pending": 0}
        store.close()

    def test_distinct_graphs_get_distinct_handles(self):
        store = GraphStore()
        graph_a, graph_b = caveman_fixture(), caveman_fixture()
        assert store.intern(graph_a) is not store.intern(graph_b)
        assert store.stats()["misses"] == 2
        store.close()

    def test_mutated_graph_rebuilds_the_handle(self):
        store = GraphStore()
        graph = caveman_fixture()
        stale = store.intern(graph)
        stale.dense()
        graph.add_edge("x", "y")
        fresh = store.intern(graph)
        assert fresh is not stale
        assert fresh.dense().num_edges == graph.num_edges
        store.close()

    def test_superseded_handles_are_collectable(self):
        import gc
        import weakref as weakref_module

        store = GraphStore()
        graph = caveman_fixture()
        old = store.intern(graph)
        old.dense()
        old_ref = weakref_module.ref(old)
        graph.add_edge("x", "y")
        store.intern(graph)  # stale: closes and replaces the old handle
        del old
        gc.collect()
        # The graph's finalizer must not pin the superseded handle (and
        # its whole substrate) for the graph's lifetime.
        assert old_ref() is None
        store.close()

    def test_count_preserving_mutation_is_detected(self):
        # remove-one/add-one keeps num_edges constant; the mutation
        # counter must still mark the handle stale.
        store = GraphStore()
        graph = caveman_fixture()
        stale = store.intern(graph)
        u, v = next(graph.edges())
        graph.remove_edge(u, v)
        graph.add_edge("p", "q")
        assert stale.stale
        fresh = store.intern(graph)
        assert fresh is not stale
        store.close()

    def test_anonymous_graphs_are_evictable(self):
        import gc

        store = GraphStore()
        graph = caveman_fixture()
        handle = store.intern(graph)
        handle.dense()
        assert store.stats()["graphs"] == 1
        del graph
        gc.collect()
        # The weak table dropped the entry; the handle reports the loss
        # instead of silently serving a dead graph.
        assert store.stats()["graphs"] == 0
        with pytest.raises(ServiceError):
            handle.graph
        store.close()

    def test_named_graphs_are_pinned(self):
        import gc

        store = GraphStore()
        store.register("cave", caveman_fixture())  # no caller-side reference
        gc.collect()
        assert store.get("cave").graph.num_nodes == 200
        store.close()

    @pytest.mark.skipif(not process_execution_available(),
                        reason="no fork on this platform")
    def test_warm_shingle_pool_creation_does_not_self_deadlock(self):
        # Regression: shingle_executor built its (csr, labels) context
        # while holding the handle lock that csr()/dense() also take.
        from repro.engine.execution import ExecutionConfig

        store = GraphStore()
        graph = caveman_fixture()
        handle = store.intern(graph)
        execution = ExecutionConfig(workers=2, shingle_parallel_min_nodes=1)
        pool = handle.shingle_executor(execution)
        assert pool is not None
        assert handle.shingle_executor(execution) is pool  # cached per width
        store.close()

    def test_named_registration(self):
        store = GraphStore()
        graph = caveman_fixture()
        handle = store.register("cave", graph)
        assert store.get("cave") is handle
        assert store.keys() == ["cave"]
        with pytest.raises(ServiceError):
            store.get("unknown")
        store.close()


# ----------------------------------------------------------------------
# Lifecycle: ordering, cancellation, progress
# ----------------------------------------------------------------------
class TestJobLifecycle:
    def test_fifo_queue_ordering(self):
        _GatedSummarizer.started = []
        _GatedSummarizer.gates = {seed: threading.Event() for seed in (1, 2, 3)}
        graph = caveman_fixture()
        with SummaryService(max_inflight=1) as service:
            jobs = [service.submit(method="svc-test-gated", graph=graph, seed=seed)
                    for seed in (1, 2, 3)]
            assert [job.id for job in jobs] == [1, 2, 3]
            # Release out of order; a single in-flight lane must still
            # run (and settle) in submission order.
            for seed in (3, 2, 1):
                _GatedSummarizer.gates[seed].set()
            for job in jobs:
                job.result(timeout=30)
        assert _GatedSummarizer.started == [1, 2, 3]
        assert [job.state for job in jobs] == [JobState.DONE] * 3

    def test_cancel_before_run(self):
        _GatedSummarizer.started = []
        _GatedSummarizer.gates = {10: threading.Event()}
        graph = caveman_fixture()
        with SummaryService(max_inflight=1) as service:
            blocker = service.submit(method="svc-test-gated", graph=graph, seed=10)
            wait_until(lambda: blocker.state is JobState.RUNNING)
            queued = service.submit(method="slugger", graph=graph, seed=0,
                                    options=SLUGGER_OPTIONS)
            assert queued.cancel()
            _GatedSummarizer.gates[10].set()
            blocker.result(timeout=30)
            with pytest.raises(JobCancelled):
                queued.result(timeout=30)
        assert queued.state is JobState.CANCELLED
        assert 0 not in _GatedSummarizer.started  # the cancelled job never ran
        assert queued.events()[-1].stage == "cancelled"

    def test_cancel_mid_run_stops_between_iterations(self):
        graph = caveman_fixture()
        with SummaryService(max_inflight=1) as service:
            job = service.submit(method="slugger", graph=graph, seed=0,
                                 options={"iterations": 50})

            def cancel_after_two(event):
                if event.stage == "iteration" and event.payload["iteration"] == 2:
                    job.cancel()

            job.add_progress_listener(cancel_after_two)
            with pytest.raises(JobCancelled):
                job.result(timeout=60)
        assert job.state is JobState.CANCELLED
        iterations = [event.payload["iteration"] for event in job.events()
                      if event.stage == "iteration"]
        assert iterations and max(iterations) == 2  # nothing ran after the cancel

    def test_progress_events_are_monotonic_and_complete(self):
        graph = caveman_fixture()
        streamed = []
        with SummaryService(max_inflight=1) as service:
            job = service.submit(method="slugger", graph=graph, seed=0,
                                 options=SLUGGER_OPTIONS)
            job.result(timeout=60)
            job.add_progress_listener(streamed.append)  # late subscriber
        events = job.events()
        assert [event.seq for event in events] == list(range(len(events)))
        assert events[0].stage == "queued"
        assert events[1].stage == "started"
        assert events[-1].stage == "done"
        iterations = [event.payload["iteration"] for event in events
                      if event.stage == "iteration"]
        assert iterations == sorted(iterations) == list(range(1, 6))
        assert all(event.method == "slugger" for event in events)
        # The late subscriber got the full backlog, in order.
        assert [event.seq for event in streamed] == [event.seq for event in events]

    def test_raising_listener_does_not_kill_the_dispatcher(self):
        graph = caveman_fixture()
        with SummaryService(max_inflight=1) as service:
            first = service.submit(method="slugger", graph=graph, seed=0,
                                   options=SLUGGER_OPTIONS)
            first.add_progress_listener(
                lambda event: (_ for _ in ()).throw(RuntimeError("bad listener"))
            )
            first.result(timeout=120)
            # The lane survived the listener; later jobs still execute.
            second = service.submit(method="slugger", graph=graph, seed=1,
                                    options=SLUGGER_OPTIONS)
            second.result(timeout=120)
        assert first.state is JobState.DONE
        assert second.state is JobState.DONE

    def test_mutated_named_graph_is_reinterned_on_get(self):
        graph = caveman_fixture()
        with SummaryService(max_inflight=1) as service:
            service.register_graph("cave", graph)
            service.submit(method="slugger", graph_key="cave", seed=0,
                           options=SLUGGER_OPTIONS).result(timeout=120)
            graph.add_edge("extra-a", "extra-b")
            refreshed = service.submit(method="slugger", graph_key="cave", seed=0,
                                       options=SLUGGER_OPTIONS).result(timeout=120)
            refreshed.summary.validate(graph)  # built against the mutated graph
            assert service.stats()["store"]["misses"] == 2  # stale handle rebuilt

    def test_failed_job_reraises(self):
        with SummaryService(max_inflight=1) as service:
            job = service.submit(method="no-such-method", graph=caveman_fixture())
            with pytest.raises(ConfigurationError):
                job.result(timeout=30)
        assert job.state is JobState.FAILED
        assert job.events()[-1].stage == "failed"

    def test_result_timeout(self):
        _GatedSummarizer.gates = {77: threading.Event()}
        with SummaryService(max_inflight=1) as service:
            job = service.submit(method="svc-test-gated", graph=caveman_fixture(),
                                 seed=77)
            with pytest.raises(TimeoutError):
                job.result(timeout=0.05)
            _GatedSummarizer.gates[77].set()
            job.result(timeout=30)


# ----------------------------------------------------------------------
# Backpressure and shutdown
# ----------------------------------------------------------------------
class TestServiceLifecycle:
    def test_bounded_queue_saturates(self):
        _GatedSummarizer.gates = {50: threading.Event()}
        graph = caveman_fixture()
        service = SummaryService(max_inflight=1, max_pending=1)
        try:
            running = service.submit(method="svc-test-gated", graph=graph, seed=50)
            wait_until(lambda: running.state is JobState.RUNNING)
            service.submit(method="slugger", graph=graph, seed=0,
                           options=SLUGGER_OPTIONS)
            with pytest.raises(ServiceSaturatedError):
                service.submit(method="slugger", graph=graph, seed=1,
                               options=SLUGGER_OPTIONS)
        finally:
            _GatedSummarizer.gates[50].set()
            service.shutdown()

    def test_closed_service_rejects_submissions(self):
        graph = caveman_fixture()
        with SummaryService() as service:
            service.submit(method="slugger", graph=graph, seed=0,
                           options=SLUGGER_OPTIONS).result(timeout=60)
        with pytest.raises(ServiceClosedError):
            service.submit(method="slugger", graph=graph, seed=0)
        with pytest.raises(ServiceClosedError):
            service.run(SummaryRequest(method="slugger", graph=graph, seed=0))

    def test_shutdown_cancels_pending(self):
        _GatedSummarizer.gates = {60: threading.Event()}
        graph = caveman_fixture()
        service = SummaryService(max_inflight=1)
        running = service.submit(method="svc-test-gated", graph=graph, seed=60)
        wait_until(lambda: running.state is JobState.RUNNING)
        queued = service.submit(method="slugger", graph=graph, seed=0,
                                options=SLUGGER_OPTIONS)
        service.shutdown(wait=False, cancel_pending=True)
        assert queued.state is JobState.CANCELLED
        _GatedSummarizer.gates[60].set()
        running.result(timeout=30)
        service.shutdown()  # idempotent; joins the dispatcher

    def test_submit_rejects_overrides_on_a_prepared_request(self):
        graph = caveman_fixture()
        request = SummaryRequest(method="slugger", graph=graph, seed=0,
                                 options=SLUGGER_OPTIONS)
        with SummaryService() as service:
            with pytest.raises(ConfigurationError):
                service.submit(request, seed=3)  # silently ignored before
            with pytest.raises(ConfigurationError):
                service.submit(request, options={"iterations": 20})
            service.submit(request).result(timeout=120)  # plain request is fine

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            SummaryService(mode="fiber")
        with pytest.raises(ConfigurationError):
            SummaryService(max_pending=0)
        with pytest.raises(ConfigurationError):
            SummaryService(max_inflight=0)
        with pytest.raises(ConfigurationError):
            SummaryService(workers=2, execution=engine.ExecutionConfig(workers=2))


# ----------------------------------------------------------------------
# Determinism: the acceptance-criteria pins
# ----------------------------------------------------------------------
class TestServingDeterminism:
    def test_engine_run_matches_the_pin(self):
        result = engine.run("slugger", caveman_fixture(), seed=0, iterations=5)
        summary = result.summary
        assert (summary.cost(), summary.num_p_edges, summary.num_n_edges,
                summary.num_h_edges) == CAVEMAN_SLUGGER_PIN

    def test_engine_run_is_warm_across_repeats(self):
        graph = caveman_fixture()
        first = engine.run("slugger", graph, seed=0, iterations=5)
        store_stats = default_service().stats()["store"]
        second = engine.run("slugger", graph, seed=0, iterations=5)
        assert fingerprint(first.summary) == fingerprint(second.summary)
        after = default_service().stats()["store"]
        assert after["hits"] > store_stats["hits"]

    def test_single_warm_job_matches_engine_run(self):
        graph = caveman_fixture()
        reference = engine.run("slugger", graph, seed=0, iterations=5)
        with SummaryService(max_inflight=1) as service:
            warm = service.submit(method="slugger", graph=graph, seed=0,
                                  options=SLUGGER_OPTIONS).result(timeout=120)
        assert fingerprint(warm.summary) == fingerprint(reference.summary)
        assert (warm.summary.cost(), warm.summary.num_p_edges,
                warm.summary.num_n_edges, warm.summary.num_h_edges) == \
            CAVEMAN_SLUGGER_PIN

    def test_eight_concurrent_mixed_submissions_are_bit_identical(self):
        graph = caveman_fixture()
        specs = [
            ("slugger", 0, SLUGGER_OPTIONS),
            ("sweg", 0, {"iterations": 5}),
            ("randomized", 1, {}),
            ("sags", 2, {}),
            ("slugger", 0, SLUGGER_OPTIONS),
            ("sweg", 0, {"iterations": 5}),
            ("randomized", 1, {}),
            ("sags", 2, {}),
        ]
        # Direct, service-free reference runs (one per distinct request).
        references = {}
        for method, seed, options in specs:
            if (method, seed) not in references:
                references[(method, seed)] = engine.create(
                    method, **options
                ).summarize(graph, seed=seed)
        with SummaryService(max_inflight=8) as service:
            jobs = [service.submit(method=method, graph=graph, seed=seed,
                                   options=options)
                    for method, seed, options in specs]
            results = [job.result(timeout=300) for job in jobs]
        for (method, seed, _options), result in zip(specs, results):
            assert fingerprint(result.summary) == \
                fingerprint(references[(method, seed)].summary), \
                f"{method} diverged under concurrent mixed traffic"
            result.summary.validate(graph)
        slugger_summary = results[0].summary
        assert (slugger_summary.cost(), slugger_summary.num_p_edges,
                slugger_summary.num_n_edges, slugger_summary.num_h_edges) == \
            CAVEMAN_SLUGGER_PIN
        assert results[1].summary.cost_eq11() == CAVEMAN_SWEG_COST

    @pytest.mark.skipif(not process_execution_available(),
                        reason="no fork on this platform")
    def test_process_mode_matches_the_pin(self):
        graph = caveman_fixture()
        reference = engine.run("slugger", graph, seed=0, iterations=5)
        with SummaryService(mode="process", max_inflight=2) as service:
            service.register_graph("cave", graph)
            jobs = [service.submit(method="slugger", graph_key="cave", seed=0,
                                   options=SLUGGER_OPTIONS) for _ in range(2)]
            jobs.append(service.submit(method="sweg", graph_key="cave", seed=0,
                                       options={"iterations": 5}))
            results = [job.result(timeout=300) for job in jobs]
        assert service.stats()["pool_jobs"] == 3
        for result in results[:2]:
            assert fingerprint(result.summary) == fingerprint(reference.summary)
        assert results[2].summary.cost_eq11() == CAVEMAN_SWEG_COST

    @pytest.mark.skipif(not process_execution_available(),
                        reason="no fork on this platform")
    def test_process_mode_inline_graph_requests(self):
        # Anonymous graphs cannot be resolved from the workers' snapshot,
        # so they must ship with the payload (regression: this used to
        # fail with KeyError('graph_key')).
        graph = caveman_fixture()
        reference = engine.run("slugger", graph, seed=0, iterations=5)
        with SummaryService(mode="process", max_inflight=1) as service:
            result = service.submit(method="slugger", graph=graph, seed=0,
                                    options=SLUGGER_OPTIONS).result(timeout=300)
        assert fingerprint(result.summary) == fingerprint(reference.summary)

    @pytest.mark.skipif(not process_execution_available(),
                        reason="no fork on this platform")
    def test_process_mode_graph_registered_after_fork(self):
        # A graph registered after the pool forked is not in the workers'
        # snapshot; it must travel with the payload and still match.
        early, late = caveman_fixture(), erdos_renyi_graph(150, 0.05, seed=9)
        with SummaryService(mode="process", max_inflight=1) as service:
            service.register_graph("early", early)
            first = service.submit(method="slugger", graph_key="early", seed=0,
                                   options=SLUGGER_OPTIONS).result(timeout=300)
            service.register_graph("late", late)
            second = service.submit(method="slugger", graph_key="late", seed=3,
                                    options=SLUGGER_OPTIONS).result(timeout=300)
        assert fingerprint(first.summary) == fingerprint(
            engine.run("slugger", early, seed=0, iterations=5).summary
        )
        assert fingerprint(second.summary) == fingerprint(
            engine.run("slugger", late, seed=3, iterations=5).summary
        )

    @pytest.mark.skipif(not process_execution_available(),
                        reason="no fork on this platform")
    def test_process_mode_rekeyed_graph_after_fork(self):
        # Registering an already-interned graph under a NEW key after the
        # pool forked: the snapshot cannot resolve the new key, so the
        # graph must ship with the payload (regression: KeyError in the
        # worker because the handle's creation generation looked warm).
        graph = caveman_fixture()
        with SummaryService(mode="process", max_inflight=1) as service:
            service.register_graph("first", graph)
            first = service.submit(method="slugger", graph_key="first", seed=0,
                                   options=SLUGGER_OPTIONS).result(timeout=300)
            service.register_graph("second", graph)  # same graph, new key
            second = service.submit(method="slugger", graph_key="second", seed=0,
                                    options=SLUGGER_OPTIONS).result(timeout=300)
        assert fingerprint(first.summary) == fingerprint(second.summary)

    def test_graph_key_and_inline_requests_agree(self):
        graph = caveman_fixture()
        with SummaryService() as service:
            service.register_graph("cave", graph)
            by_key = service.submit(method="slugger", graph_key="cave", seed=0,
                                    options=SLUGGER_OPTIONS).result(timeout=120)
            inline = service.submit(method="slugger", graph=graph, seed=0,
                                    options=SLUGGER_OPTIONS).result(timeout=120)
        assert fingerprint(by_key.summary) == fingerprint(inline.summary)

    def test_service_interning_is_shared_across_jobs(self):
        graph = caveman_fixture()
        with SummaryService(max_inflight=2) as service:
            jobs = [service.submit(method="slugger", graph=graph, seed=seed,
                                   options=SLUGGER_OPTIONS) for seed in range(4)]
            for job in jobs:
                job.result(timeout=300)
            stats = service.stats()["store"]
        assert stats["misses"] == 1
        assert stats["hits"] >= 3


# ----------------------------------------------------------------------
# Async entry point
# ----------------------------------------------------------------------
class TestAsyncEntryPoint:
    def test_await_summarize(self):
        graph = caveman_fixture()
        reference = engine.run("slugger", graph, seed=0, iterations=5)

        async def main():
            with SummaryService(max_inflight=2) as service:
                return await asyncio.gather(*[
                    service.summarize("slugger", graph, seed=0,
                                      options=SLUGGER_OPTIONS)
                    for _ in range(3)
                ])

        results = asyncio.run(main())
        assert all(fingerprint(result.summary) == fingerprint(reference.summary)
                   for result in results)

    def test_await_failure_propagates(self):
        async def main():
            with SummaryService() as service:
                await service.summarize("no-such-method", caveman_fixture())

        with pytest.raises(ConfigurationError):
            asyncio.run(main())


# ----------------------------------------------------------------------
# RunControl and executor teardown (satellites)
# ----------------------------------------------------------------------
class TestRunControl:
    def test_emit_and_cancel(self):
        events = []
        token = threading.Event()
        control = RunControl(on_progress=events.append, cancel=token)
        control.emit("iteration", iteration=1)
        control.emit("iteration", iteration=2)
        assert events == [
            {"stage": "iteration", "seq": 0, "iteration": 1},
            {"stage": "iteration", "seq": 1, "iteration": 2},
        ]
        assert not control.cancelled()
        control.checkpoint()
        token.set()
        assert control.cancelled()
        with pytest.raises(JobCancelled):
            control.checkpoint()

    def test_default_control_is_inert(self):
        control = RunControl()
        control.emit("iteration", iteration=1)  # no callback, no error
        control.checkpoint()


def _boom(payload):
    raise ValueError(f"boom {payload}")


class TestExecutorTeardown:
    @pytest.mark.skipif(not process_execution_available(),
                        reason="no fork on this platform")
    def test_pool_is_torn_down_on_worker_failure(self):
        with ProcessShardExecutor(2, context=1) as executor:
            with pytest.raises(ValueError):
                list(executor.map_shards(_boom, [1, 2]))
        assert executor._pool is None  # workers joined, nothing leaked
        assert executor._closed

    @pytest.mark.skipif(not process_execution_available(),
                        reason="no fork on this platform")
    def test_submit_failure_recycles_but_does_not_brick_the_pool(self):
        # A transient submission failure (e.g. a broken pool) tears the
        # forked workers down but leaves the executor usable — warm pools
        # shared across requests must survive one bad submission.
        class _BrokenPool:
            def map(self, fn, payloads):
                raise RuntimeError("broken pool")

            def shutdown(self, wait=True):
                pass

        executor = ProcessShardExecutor(2, context=5)
        executor._pool = _BrokenPool()
        with pytest.raises(RuntimeError, match="broken pool"):
            executor.map_shards(_add_context, [1])
        assert executor._pool is None  # torn down, nothing leaked
        assert not executor._closed    # ...but not bricked
        assert list(executor.map_shards(_add_context, [1, 2])) == [6, 7]
        executor.close()

    @pytest.mark.skipif(not process_execution_available(),
                        reason="no fork on this platform")
    def test_close_is_idempotent_and_restart_reforks(self):
        executor = ProcessShardExecutor(2, context=5)
        add = _add_context
        assert list(executor.map_shards(add, [1, 2])) == [6, 7]
        executor.restart()
        assert list(executor.map_shards(add, [3])) == [8]
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError):
            executor.map_shards(add, [1])

    def test_concurrent_serial_contexts_stay_isolated(self):
        from repro.engine.execution import SerialExecutor

        failures = []

        def run(value):
            try:
                with SerialExecutor(context=value) as executor:
                    for result in executor.map_shards(_add_context, [0] * 50):
                        if result != value:
                            failures.append((value, result))
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append((value, error))

        threads = [threading.Thread(target=run, args=(offset,))
                   for offset in (100, 200, 300, 400)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


def _add_context(payload):
    from repro.engine.execution import worker_context

    return worker_context() + payload
