"""Tests for the SLUGGER driver, configuration, candidates, and merging step."""

from __future__ import annotations

import pytest

from repro.core import Slugger, SluggerConfig, summarize
from repro.core.candidates import generate_candidate_sets
from repro.core.config import SluggerConfig as Config
from repro.core.merging import merge_and_update, process_candidate_set
from repro.core.shingles import (
    ShingleCache,
    make_hash_function,
    root_shingles,
    subnode_shingles,
)
from repro.core.state import SluggerState
from repro.exceptions import ConfigurationError
from repro.graphs import (
    Graph,
    caveman_graph,
    complete_bipartite_graph,
    complete_graph,
    erdos_renyi_graph,
    nested_partition_graph,
    star_graph,
)


class TestConfig:
    def test_defaults_are_valid(self):
        config = SluggerConfig()
        assert config.iterations == 20
        assert config.prune is True

    def test_threshold_schedule_paper(self):
        config = SluggerConfig(iterations=5)
        assert config.threshold(1) == pytest.approx(0.5)
        assert config.threshold(4) == pytest.approx(0.2)
        assert config.threshold(5) == 0.0

    def test_threshold_schedule_zero_and_constant(self):
        assert SluggerConfig(iterations=3, threshold_schedule="zero").threshold(1) == 0.0
        constant = SluggerConfig(iterations=3, threshold_schedule="constant:0.25")
        assert constant.threshold(1) == 0.25
        assert constant.threshold(3) == 0.25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SluggerConfig(iterations=0)
        with pytest.raises(ConfigurationError):
            SluggerConfig(max_candidate_size=1)
        with pytest.raises(ConfigurationError):
            SluggerConfig(height_bound=0)
        with pytest.raises(ConfigurationError):
            SluggerConfig(threshold_schedule="bogus")
        with pytest.raises(ConfigurationError):
            SluggerConfig(threshold_schedule="constant:2.0")
        with pytest.raises(ConfigurationError):
            SluggerConfig(prune_rounds=-1)

    def test_threshold_out_of_range(self):
        config = SluggerConfig(iterations=3)
        with pytest.raises(ConfigurationError):
            config.threshold(0)
        with pytest.raises(ConfigurationError):
            config.threshold(4)


class TestShingles:
    def test_hash_function_deterministic(self):
        first = make_hash_function(3)
        second = make_hash_function(3)
        assert [first(x) for x in range(10)] == [second(x) for x in range(10)]

    def test_subnode_shingles_reflect_neighborhoods(self):
        graph = complete_bipartite_graph(2, 4)
        shingles = subnode_shingles(graph, make_hash_function(1))
        # Nodes 0 and 1 share the same (closed-ish) neighborhood {2,3,4,5}.
        assert shingles[0] == min(shingles[0], shingles[1]) or shingles[1] == shingles[0]

    def test_root_shingles_take_minimum(self):
        graph = complete_graph(4)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        node_shingles = subnode_shingles(graph, make_hash_function(2))
        merged = state.merge_roots(hierarchy.leaf_of(0), hierarchy.leaf_of(1))
        values = root_shingles([merged], hierarchy, node_shingles)
        assert values[merged] == min(node_shingles[0], node_shingles[1])

    def test_hash_function_distinguishes_ids_near_mask_boundary(self):
        # Regression: the old 61-bit pre-mask collided x with x + 2**61 and
        # conflated distinct negative hash() values with large positives.
        hash_function = make_hash_function(5)
        boundary_ids = [2**61 - 2, 2**61 - 1, 2**61, 2**61 + 1, 2**62 + 3]
        values = [hash_function(x) for x in boundary_ids]
        assert len(set(values)) == len(values)
        for x in (7, 123456):
            assert hash_function(x) != hash_function(x + 2**61)
        assert hash_function(-1) != hash_function(2**61 - 1)

    def test_shingle_cache_matches_eager_computation(self):
        graph = erdos_renyi_graph(50, 0.15, seed=9)
        eager = subnode_shingles(graph, make_hash_function(13))
        lazy = ShingleCache(graph, 13)
        assert all(lazy.shingle(node) == eager[node] for node in graph.nodes())
        bulk = ShingleCache(graph, 13)
        assert bulk.ensure_shingles() == eager

    def test_shingle_cache_is_lazy(self):
        graph = erdos_renyi_graph(50, 0.1, seed=9)
        cache = ShingleCache(graph, 13)
        node = graph.nodes()[0]
        cache.shingle(node)
        # Only the requested closed neighborhood was hashed.
        assert len(cache._values) <= graph.degree(node) + 1

    def test_shingle_cache_agrees_with_root_shingles_on_merged_roots(self):
        graph = complete_graph(4)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        merged = state.merge_roots(hierarchy.leaf_of(2), hierarchy.leaf_of(3))
        cache = ShingleCache(graph, 2)
        eager = root_shingles([merged], hierarchy, subnode_shingles(graph, make_hash_function(2)))
        lazy = min(cache.shingle(subnode) for subnode in hierarchy.leaf_subnodes(merged))
        assert lazy == eager[merged]


class TestCandidates:
    def test_all_roots_covered_at_most_once(self):
        graph = erdos_renyi_graph(60, 0.1, seed=5)
        state = SluggerState(graph)
        config = SluggerConfig(max_candidate_size=10, seed=0)
        candidate_sets = generate_candidate_sets(
            graph, state.summary.hierarchy, sorted(state.roots), config, seed=1
        )
        seen = [root for candidate_set in candidate_sets for root in candidate_set]
        assert len(seen) == len(set(seen))
        assert set(seen) <= state.roots
        for candidate_set in candidate_sets:
            assert 2 <= len(candidate_set) <= config.max_candidate_size

    def test_small_graphs_make_one_group(self):
        graph = complete_graph(5)
        state = SluggerState(graph)
        config = SluggerConfig(max_candidate_size=10, seed=0)
        candidate_sets = generate_candidate_sets(
            graph, state.summary.hierarchy, sorted(state.roots), config, seed=2
        )
        assert len(candidate_sets) == 1
        assert len(candidate_sets[0]) == 5

    def test_deterministic_for_fixed_seed(self):
        graph = erdos_renyi_graph(50, 0.1, seed=3)
        state = SluggerState(graph)
        config = SluggerConfig(max_candidate_size=8, seed=0)
        first = generate_candidate_sets(graph, state.summary.hierarchy, sorted(state.roots), config, seed=7)
        second = generate_candidate_sets(graph, state.summary.hierarchy, sorted(state.roots), config, seed=7)
        assert first == second


class TestMergingStep:
    def test_merge_and_update_keeps_losslessness(self):
        graph = complete_bipartite_graph(3, 4)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        config = SluggerConfig(seed=0)
        merged = merge_and_update(state, hierarchy.leaf_of(0), hierarchy.leaf_of(1), config)
        assert merged in state.roots
        state.summary.validate(graph)
        state.check_consistency()

    def test_merge_and_update_compresses_twins(self):
        graph = complete_bipartite_graph(2, 6)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        before = state.summary.cost()
        config = SluggerConfig(seed=0)
        merge_and_update(state, hierarchy.leaf_of(0), hierarchy.leaf_of(1), config)
        assert state.summary.cost() < before
        state.summary.validate(graph)

    def test_process_candidate_set_merges_clique(self):
        graph = complete_graph(6)
        state = SluggerState(graph)
        config = SluggerConfig(seed=0)
        merges = process_candidate_set(state, sorted(state.roots), 0.0, config, seed=3)
        assert merges >= 1
        state.summary.validate(graph)
        assert state.summary.cost() < graph.num_edges

    def test_threshold_one_blocks_all_merges(self):
        graph = complete_graph(5)
        state = SluggerState(graph)
        config = SluggerConfig(seed=0)
        merges = process_candidate_set(state, sorted(state.roots), 1.1, config, seed=3)
        assert merges == 0
        assert state.summary.cost() == graph.num_edges

    def test_process_candidate_set_handles_multiple_merges(self):
        # Several merges inside one candidate set: each merged root must
        # replace its partner in the queue (position-map bookkeeping), and
        # merged roots must stay mergeable with one another.
        graph = caveman_graph(3, 4, seed=0)
        for seed in range(5):
            state = SluggerState(graph)
            config = SluggerConfig(seed=0)
            merges = process_candidate_set(state, sorted(state.roots), 0.0, config, seed=seed)
            assert merges >= 2
            state.check_consistency()
            state.summary.validate(graph)
            # Every merge removed one root from play.
            assert len(state.roots) == graph.num_nodes - merges

    def test_process_candidate_set_tolerates_duplicate_roots(self):
        graph = complete_graph(6)
        for seed in range(4):
            state = SluggerState(graph)
            config = SluggerConfig(seed=0)
            roots = sorted(state.roots)
            merges = process_candidate_set(state, roots + roots[:3], 0.0, config, seed=seed)
            assert merges >= 1
            state.check_consistency()
            state.summary.validate(graph)

    def test_process_candidate_set_skips_non_root_candidates(self):
        graph = complete_graph(6)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        config = SluggerConfig(seed=0)
        merged = state.merge_roots(hierarchy.leaf_of(0), hierarchy.leaf_of(1))
        stale = [hierarchy.leaf_of(0), hierarchy.leaf_of(1)]  # no longer roots
        candidate_set = stale + sorted(state.roots)
        merges = process_candidate_set(state, candidate_set, 0.0, config, seed=1)
        assert merges >= 1
        assert merged not in stale
        state.check_consistency()
        state.summary.validate(graph)


class TestDriver:
    def test_summarize_is_lossless(self, any_small_graph):
        result = summarize(any_small_graph, iterations=4, seed=0)
        result.summary.validate(any_small_graph)

    def test_summarize_compresses_structured_graphs(self, small_caveman, small_clique,
                                                    small_bipartite, small_hierarchical):
        for graph in (small_caveman, small_clique, small_bipartite, small_hierarchical):
            result = summarize(graph, iterations=6, seed=0)
            assert result.cost() < graph.num_edges

    def test_result_history_and_stats(self, small_caveman):
        result = summarize(small_caveman, iterations=3, seed=0)
        assert len(result.history) == 3
        assert result.history[0]["iteration"] == 1.0
        assert result.runtime_seconds > 0
        assert set(result.prune_stats) == {"substep1", "substep2", "substep3"}

    def test_deterministic_given_seed(self, small_hierarchical):
        first = summarize(small_hierarchical, iterations=4, seed=11)
        second = summarize(small_hierarchical, iterations=4, seed=11)
        assert first.cost() == second.cost()

    def test_validate_output_flag(self, small_random):
        result = summarize(small_random, iterations=2, seed=0, validate_output=True)
        assert result.cost() <= small_random.num_edges

    def test_height_bound_respected(self, small_caveman):
        for bound in (1, 2, 3):
            result = summarize(small_caveman, iterations=5, seed=0, height_bound=bound)
            result.summary.validate(small_caveman)
            assert result.summary.hierarchy.max_height() <= bound

    def test_height_bound_trades_compression(self, small_hierarchical):
        bounded = summarize(small_hierarchical, iterations=5, seed=0, height_bound=1)
        unbounded = summarize(small_hierarchical, iterations=5, seed=0)
        assert bounded.cost() >= unbounded.cost()

    def test_no_prune_keeps_more_supernodes(self, small_caveman):
        pruned = summarize(small_caveman, iterations=5, seed=0)
        unpruned = summarize(small_caveman, iterations=5, seed=0, prune=False)
        assert unpruned.summary.hierarchy.num_supernodes >= pruned.summary.hierarchy.num_supernodes
        unpruned.summary.validate(small_caveman)

    def test_edgeless_graph(self):
        graph = Graph(nodes=[0, 1, 2])
        result = summarize(graph, iterations=2, seed=0)
        assert result.cost() == 0
        assert result.history == []

    def test_star_graph_not_inflated(self):
        graph = star_graph(10)
        result = summarize(graph, iterations=4, seed=0)
        result.summary.validate(graph)
        assert result.cost() <= graph.num_edges

    def test_slugger_rejects_config_plus_overrides(self):
        with pytest.raises(TypeError):
            Slugger(SluggerConfig(), iterations=3)

    def test_slugger_rejects_non_graph(self):
        with pytest.raises(TypeError):
            Slugger(SluggerConfig(iterations=1)).summarize("not a graph")

    def test_memoization_ablation_equivalent_cost(self, small_caveman):
        with_memo = summarize(small_caveman, iterations=4, seed=0, use_memoized_encoder=True)
        without_memo = summarize(small_caveman, iterations=4, seed=0, use_memoized_encoder=False)
        assert with_memo.cost() == without_memo.cost()
