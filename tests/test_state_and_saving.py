"""Unit tests for SLUGGER's mutable state and the saving objective."""

from __future__ import annotations

import pytest

from repro.core.saving import best_partner, estimate_merged_cost, pair_cost_estimate, saving, two_hop_roots
from repro.core.state import SluggerState
from repro.exceptions import SummaryInvariantError
from repro.graphs import Graph, complete_bipartite_graph, complete_graph, path_graph


@pytest.fixture
def path_state() -> SluggerState:
    return SluggerState(path_graph(5))


class TestStateInitialization:
    def test_initial_indices(self, path_state):
        graph = path_state.graph
        assert len(path_state.roots) == graph.num_nodes
        assert path_state.total_cost() == graph.num_edges
        path_state.check_consistency()

    def test_initial_costs(self, path_state):
        hierarchy = path_state.summary.hierarchy
        endpoint = hierarchy.leaf_of(0)
        middle = hierarchy.leaf_of(2)
        assert path_state.cost_of(endpoint) == 1
        assert path_state.cost_of(middle) == 2
        assert path_state.subedges_between(endpoint, hierarchy.leaf_of(1)) == 1
        assert path_state.pn_cost_between(endpoint, hierarchy.leaf_of(1)) == 1

    def test_neighbor_roots(self, path_state):
        hierarchy = path_state.summary.hierarchy
        middle = hierarchy.leaf_of(2)
        assert two_hop_roots(path_state, middle) >= path_state.neighbor_roots(middle)
        assert len(path_state.neighbor_roots(middle)) == 2


class TestSuperedgeBookkeeping:
    def test_add_and_remove_superedge(self, path_state):
        hierarchy = path_state.summary.hierarchy
        a, b = hierarchy.leaf_of(0), hierarchy.leaf_of(2)
        path_state.add_superedge(a, b, a, b, 1)
        assert path_state.pn_cost_between(a, b) == 1
        path_state.check_consistency()
        path_state.remove_superedge(a, b, a, b, 1)
        assert path_state.pn_cost_between(a, b) == 0
        path_state.check_consistency()

    def test_remove_missing_superedge_raises(self, path_state):
        hierarchy = path_state.summary.hierarchy
        a, b = hierarchy.leaf_of(0), hierarchy.leaf_of(2)
        with pytest.raises(SummaryInvariantError):
            path_state.remove_superedge(a, b, a, b, 1)

    def test_remove_all_between(self, path_state):
        hierarchy = path_state.summary.hierarchy
        a, b = hierarchy.leaf_of(0), hierarchy.leaf_of(1)
        assert path_state.remove_all_between(a, b) == 1
        assert path_state.pn_cost_between(a, b) == 0
        assert path_state.summary.cost() == path_state.graph.num_edges - 1


class TestMerging:
    def test_merge_rekeys_indices(self, path_state):
        hierarchy = path_state.summary.hierarchy
        a, b = hierarchy.leaf_of(1), hierarchy.leaf_of(2)
        merged = path_state.merge_roots(a, b)
        assert merged in path_state.roots
        assert a not in path_state.roots
        assert path_state.tree_h[merged] == 2
        assert path_state.tree_height[merged] == 1
        # The subedge between 1 and 2 became internal to the merged tree.
        assert path_state.subedges_between(merged, merged) == 1
        path_state.check_consistency()

    def test_merge_requires_roots(self, path_state):
        hierarchy = path_state.summary.hierarchy
        a, b, c = (hierarchy.leaf_of(node) for node in (0, 1, 2))
        path_state.merge_roots(a, b)
        with pytest.raises(SummaryInvariantError):
            path_state.merge_roots(a, c)

    def test_merge_with_self_rejected(self, path_state):
        leaf = path_state.summary.hierarchy.leaf_of(0)
        with pytest.raises(SummaryInvariantError):
            path_state.merge_roots(leaf, leaf)

    def test_chained_merges_stay_consistent(self):
        state = SluggerState(complete_graph(6))
        hierarchy = state.summary.hierarchy
        merged = state.merge_roots(hierarchy.leaf_of(0), hierarchy.leaf_of(1))
        merged = state.merge_roots(merged, hierarchy.leaf_of(2))
        state.merge_roots(hierarchy.leaf_of(3), hierarchy.leaf_of(4))
        state.check_consistency()
        assert state.tree_h[merged] == 4


class TestSaving:
    def test_pair_cost_estimate(self):
        assert pair_cost_estimate(0, 10, 0) == 0
        assert pair_cost_estimate(3, 10, 0) == 3
        assert pair_cost_estimate(9, 10, 0) == 2
        assert pair_cost_estimate(9, 10, 1) == 1

    def test_saving_positive_for_twins(self):
        # Two nodes with identical neighborhoods are the canonical good merge.
        graph = complete_bipartite_graph(2, 6)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        value = saving(state, hierarchy.leaf_of(0), hierarchy.leaf_of(1))
        assert value > 0.3

    def test_saving_negative_for_distant_pair(self):
        graph = path_graph(6)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        value = saving(state, hierarchy.leaf_of(0), hierarchy.leaf_of(5))
        assert value < 0

    def test_estimate_merged_cost_clique(self):
        graph = complete_graph(4)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        estimate = estimate_merged_cost(state, hierarchy.leaf_of(0), hierarchy.leaf_of(1))
        # Two h-edges, one p-edge inside, and at most one edge per outside node.
        assert estimate <= 2 + 1 + 2

    def test_best_partner_prefers_twin(self):
        graph = complete_bipartite_graph(2, 5)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        left_a, left_b = hierarchy.leaf_of(0), hierarchy.leaf_of(1)
        others = [hierarchy.leaf_of(node) for node in range(2, 7)]
        value, partner = best_partner(state, left_a, [left_b] + others)
        assert partner == left_b
        assert value > 0

    def test_best_partner_respects_height_bound(self):
        graph = complete_graph(4)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        merged = state.merge_roots(hierarchy.leaf_of(0), hierarchy.leaf_of(1))
        value, partner = best_partner(
            state, merged, [hierarchy.leaf_of(2)], height_bound=1
        )
        assert partner == -1

    def test_best_partner_skips_distant_candidates(self):
        graph = path_graph(8)
        state = SluggerState(graph)
        hierarchy = state.summary.hierarchy
        value, partner = best_partner(
            state, hierarchy.leaf_of(0), [hierarchy.leaf_of(6), hierarchy.leaf_of(7)]
        )
        assert partner == -1
