"""Tests for the binary storage subsystem: format, mmap views, ingest, cache.

The central guarantees exercised here:

* **Round-trip fidelity** — pack → load reproduces the graph exactly
  (node insertion order included), and a summarizer run on the loaded
  graph with the mapped CSR injected is **bit-identical** to the same
  run on the original in-memory / text-parsed graph, pinned with
  hard-coded fingerprints for SLUGGER and two baselines.
* **Fail-loud corruption handling** — bad magic, truncation, flipped
  payload bytes, and bogus section tables all raise
  ``ContainerFormatError`` (a ``GraphFormatError``), never a garbage
  graph.
* **Ingest equivalence** — the sharded parallel edge-list parser builds
  a graph identical to the serial reader, including the messy-input
  edge cases (BOM, CRLF, tabs, comments, duplicates, self-loops).
"""

from __future__ import annotations

import sys

import pytest

from repro import engine, storage
from repro.core import Slugger, SluggerConfig
from repro.engine.execution import process_execution_available
from repro.exceptions import ContainerFormatError, GraphFormatError
from repro.graphs import (
    DenseAdjacency,
    Graph,
    LazyDenseAdjacency,
    caveman_graph,
    erdos_renyi_graph,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.service import SummaryService
from repro.service.store import GraphStore
from repro.storage.cache import GraphCache, file_digest
from repro.storage.format import (
    container_digest,
    decode_varint,
    encode_varint,
    index_width_for,
)
from repro.storage.ingest import byte_shards, sharded_read_edge_list
from repro.storage.mapped import MappedCSR

#: Hash randomization changes ``hash(str)`` and therefore shingle values
#: of string-labelled graphs; string pins were captured under
#: PYTHONHASHSEED=0 (the CI determinism step).
HASHSEED_PINNED = sys.flags.hash_randomization == 0

FORK = process_execution_available()


def int_fixture() -> Graph:
    return caveman_graph(20, 10, 0.05, seed=1)


def er_fixture() -> Graph:
    return erdos_renyi_graph(300, 0.02, seed=5)


def string_fixture() -> Graph:
    return Graph(edges=[(f"v{u}", f"v{v}") for u, v in int_fixture().edges()])


def fingerprint(summary):
    if hasattr(summary, "num_p_edges"):
        return (summary.cost(), summary.num_p_edges,
                summary.num_n_edges, summary.num_h_edges)
    return (summary.cost_eq11(),)


#: Captured from serial in-memory runs (iterations=5 for the iterative
#: methods, seed=0); the generator fixtures match the pins used by
#: tests/test_execution.py.  Any drift means storage injection was not
#: output-preserving.
MEMORY_PINS = {
    ("caveman", "slugger"): (332, 133, 7, 192),
    ("caveman", "sweg"): (327,),
    ("caveman", "randomized"): (327,),
    ("er", "slugger"): (827, 788, 0, 39),
    ("er", "sweg"): (959,),
    ("er", "randomized"): (891,),
}
#: The same runs on *text round-tripped* fixtures (write_edge_list sorts
#: edges, which permutes node insertion order — deterministically).
TEXT_PINS = {
    ("caveman", "slugger"): (333, 137, 5, 191),
    ("caveman", "sweg"): (332,),
    ("caveman", "randomized"): (327,),
    ("er", "slugger"): (828, 786, 0, 42),
    ("er", "sweg"): (943,),
    ("er", "randomized"): (892,),
}
#: String-labelled fixture (PYTHONHASHSEED=0 only).
STRING_PINS = {
    "slugger": (340, 144, 5, 191),
    "sweg": (325,),
    "randomized": (326,),
}

METHOD_OPTIONS = {
    "slugger": {"iterations": 5},
    "sweg": {"iterations": 5},
    "randomized": {},
}


# ----------------------------------------------------------------------
# Varint / format primitives
# ----------------------------------------------------------------------
class TestFormatPrimitives:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**61 - 1, 2**70])
    def test_varint_round_trip(self, value):
        out = bytearray()
        encode_varint(value, out)
        decoded, position = decode_varint(bytes(out), 0)
        assert decoded == value
        assert position == len(out)

    def test_varint_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_varint(-1, bytearray())

    def test_varint_truncation_detected(self):
        out = bytearray()
        encode_varint(300, out)
        with pytest.raises(ContainerFormatError):
            decode_varint(bytes(out[:-1]), 0)

    @pytest.mark.parametrize("nodes,width", [
        (0, 1), (1, 1), (256, 1), (257, 2), (2**16, 2), (2**16 + 1, 4),
        (2**32, 4), (2**32 + 1, 8),
    ])
    def test_index_width(self, nodes, width):
        assert index_width_for(nodes) == width

    def test_container_digest_is_content_addressed(self):
        graph_a = int_fixture()
        graph_b = int_fixture()
        csr_a = DenseAdjacency.from_graph(graph_a).freeze()
        csr_b = DenseAdjacency.from_graph(graph_b).freeze()
        assert container_digest(csr_a) == container_digest(csr_b)
        graph_b.add_edge(0, 199)
        changed = DenseAdjacency.from_graph(graph_b).freeze()
        assert container_digest(csr_a) != container_digest(changed)


# ----------------------------------------------------------------------
# Pack / load round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("make", [int_fixture, er_fixture, string_fixture])
    def test_graph_round_trip(self, tmp_path, make):
        graph = make()
        path = tmp_path / "g.slg"
        info = storage.pack(graph, path)
        assert info.num_nodes == graph.num_nodes
        assert info.num_edges == graph.num_edges
        with storage.load(path) as stored:
            loaded = stored.graph()
            assert loaded.edge_set() == graph.edge_set()
            # Insertion order is part of the contract: every downstream
            # id assignment must match the source graph's.
            assert loaded.nodes() == graph.nodes()

    def test_mapped_csr_matches_frozen_csr(self, tmp_path):
        graph = int_fixture()
        reference = DenseAdjacency.from_graph(graph).freeze()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored:
            mapped = stored.csr()
            assert isinstance(mapped, MappedCSR)
            assert mapped.num_nodes == reference.num_nodes
            assert mapped.num_edges == reference.num_edges
            assert list(mapped.indptr) == list(reference.indptr)
            assert list(mapped.indices) == list(reference.indices)
            for node in range(0, mapped.num_nodes, 7):
                assert mapped.degree(node) == reference.degree(node)
                assert list(mapped.neighbors_of(node)) == list(reference.neighbors_of(node))
            assert sorted(mapped.edge_ids()) == sorted(reference.edge_ids())
            assert mapped.has_edge(0, 1) == reference.has_edge(0, 1)
            assert not mapped.has_edge(0, 199) or reference.has_edge(0, 199)
            assert mapped.index.labels() == reference.index.labels()

    def test_thawed_dense_matches_from_graph(self, tmp_path):
        graph = int_fixture()
        reference = DenseAdjacency.from_graph(graph)
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored:
            dense = stored.dense()
            # The stored read path is a thaw-on-demand overlay: nothing
            # is materialized up front, degrees/edges come straight off
            # the map, and per-node sets appear only when read.
            assert isinstance(dense, LazyDenseAdjacency)
            assert dense.thawed_nodes == 0
            assert dense.num_nodes == reference.num_nodes
            assert dense.num_edges == reference.num_edges
            assert list(dense.degrees) == list(reference.degrees)
            assert sorted(dense.edge_ids()) == sorted(reference.edge_ids())
            assert dense.thawed_nodes == 0
            assert dense.neighbors[3] == reference.neighbors[3]
            assert dense.thawed_nodes == 1
            assert list(dense.neighbors) == reference.neighbors
            assert dense.thawed_nodes == dense.num_nodes
            assert dense.index.labels() == reference.index.labels()

    def test_identity_labels_omit_dictionary(self, tmp_path):
        path = tmp_path / "g.slg"
        info = storage.pack(int_fixture(), path)
        assert not info.has_labels
        assert {entry.tag for entry in info.sections} == {"IPTR", "INDX"}

    def test_string_labels_keep_dictionary(self, tmp_path):
        path = tmp_path / "g.slg"
        info = storage.pack(string_fixture(), path)
        assert info.has_labels
        with storage.load(path) as stored:
            assert stored.csr().index.labels() == string_fixture().nodes()

    def test_mixed_and_negative_labels(self, tmp_path):
        graph = Graph(edges=[(1, "two"), ("two", -3), (-3, 1), (10**15, -3)])
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored:
            loaded = stored.graph()
            assert loaded.edge_set() == graph.edge_set()
            assert loaded.nodes() == graph.nodes()
            # Types survive exactly: int 1 stays int, "two" stays str.
            assert all(type(a) is type(b)
                       for a, b in zip(loaded.nodes(), graph.nodes()))

    def test_unsupported_label_type_raises(self, tmp_path):
        graph = Graph(edges=[((1, 2), (3, 4))])
        with pytest.raises(GraphFormatError, match="int or str"):
            storage.pack(graph, tmp_path / "g.slg")

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.slg"
        storage.pack(Graph(), path)
        with storage.load(path) as stored:
            assert stored.graph().num_nodes == 0
            assert stored.graph().num_edges == 0

    def test_single_edge_graph(self, tmp_path):
        graph = Graph(edges=[(0, 1)])
        path = tmp_path / "one.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored:
            assert stored.graph().edge_set() == {(0, 1)}

    def test_isolated_nodes_survive(self, tmp_path):
        graph = Graph(nodes=[0, 1, 2, 3], edges=[(0, 2)])
        path = tmp_path / "iso.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored:
            assert stored.graph().nodes() == [0, 1, 2, 3]
            assert stored.graph().num_edges == 1

    def test_large_id_width_promotion(self, tmp_path):
        # 300 nodes force a 2-byte index width; cross-check a sample.
        graph = er_fixture()
        path = tmp_path / "wide.slg"
        info = storage.pack(graph, path)
        assert info.index_width == 2
        with storage.load(path) as stored:
            assert stored.graph().edge_set() == graph.edge_set()

    def test_repack_from_mapped_is_byte_identical(self, tmp_path):
        graph = string_fixture()
        first = tmp_path / "a.slg"
        second = tmp_path / "b.slg"
        storage.pack(graph, first)
        with storage.load(first) as stored:
            storage.pack(stored.graph(), second, csr=stored.csr())
        assert first.read_bytes() == second.read_bytes()

    def test_inspect_reports_sections(self, tmp_path):
        path = tmp_path / "g.slg"
        storage.pack(string_fixture(), path)
        info = storage.inspect_container(path)
        record = info.to_dict()
        assert record["num_nodes"] == 200
        assert {entry["tag"] for entry in record["sections"]} == {"IPTR", "INDX", "LBLS"}
        assert record["file_bytes"] == path.stat().st_size


# ----------------------------------------------------------------------
# Corruption / failure handling
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.fixture()
    def container(self, tmp_path):
        path = tmp_path / "g.slg"
        storage.pack(int_fixture(), path)
        return path

    def test_bad_magic(self, container):
        data = bytearray(container.read_bytes())
        data[0] ^= 0xFF
        container.write_bytes(bytes(data))
        with pytest.raises(ContainerFormatError, match="magic"):
            storage.load(container)

    def test_unsupported_version(self, container):
        data = bytearray(container.read_bytes())
        data[6] = 0xEE
        container.write_bytes(bytes(data))
        with pytest.raises(ContainerFormatError, match="version"):
            storage.load(container)

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.95])
    def test_truncated_file(self, container, fraction):
        data = container.read_bytes()
        container.write_bytes(data[:int(len(data) * fraction)])
        with pytest.raises(ContainerFormatError):
            storage.load(container)

    def test_flipped_payload_byte_fails_checksum(self, container):
        data = bytearray(container.read_bytes())
        data[len(data) // 2] ^= 0x01
        container.write_bytes(bytes(data))
        with pytest.raises(ContainerFormatError, match="checksum"):
            storage.load(container)

    def test_not_a_container(self, tmp_path):
        path = tmp_path / "nope.slg"
        path.write_text("1 2\n2 3\n")
        with pytest.raises(ContainerFormatError):
            storage.load(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "zero.slg"
        path.write_bytes(b"")
        with pytest.raises(ContainerFormatError):
            storage.load(path)

    def test_errors_are_graph_format_errors(self):
        # The acceptance contract: corrupted loads raise into the
        # GraphFormatError family, not arbitrary exceptions.
        assert issubclass(ContainerFormatError, GraphFormatError)

    def test_close_is_idempotent_and_marks_closed(self, container):
        stored = storage.load(container)
        csr = stored.csr()
        assert not csr.closed
        stored.close()
        stored.close()
        assert csr.closed


# ----------------------------------------------------------------------
# Bit-identical summarization through the storage path
# ----------------------------------------------------------------------
class TestStorageDeterminism:
    @pytest.mark.parametrize("name,make", [("caveman", int_fixture), ("er", er_fixture)])
    @pytest.mark.parametrize("method", ["slugger", "sweg", "randomized"])
    def test_memory_vs_stored_pinned(self, tmp_path, name, make, method):
        """engine.run on storage.load (MappedCSR injected) == in-memory run."""
        graph = make()
        options = METHOD_OPTIONS[method]
        reference = engine.run(method, graph, seed=0, **options)
        assert fingerprint(reference.summary) == MEMORY_PINS[(name, method)]
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored:
            result = engine.run(method, stored.graph(), seed=0,
                                resources=stored, **options)
            assert fingerprint(result.summary) == MEMORY_PINS[(name, method)]
            result.summary.validate(graph)

    @pytest.mark.parametrize("name,make", [("caveman", int_fixture), ("er", er_fixture)])
    @pytest.mark.parametrize("method", ["slugger", "sweg", "randomized"])
    def test_text_vs_stored_pinned(self, tmp_path, name, make, method):
        """The acceptance pin: text-parsed and container-loaded graphs
        produce byte-identical summaries for a fixed seed."""
        text_path = tmp_path / "g.txt"
        write_edge_list(make(), text_path)
        text_graph = read_edge_list(text_path)
        options = METHOD_OPTIONS[method]
        reference = engine.run(method, text_graph, seed=0, **options)
        assert fingerprint(reference.summary) == TEXT_PINS[(name, method)]
        container = tmp_path / "g.slg"
        storage.pack(text_graph, container)
        with storage.load(container) as stored:
            result = engine.run(method, stored.graph(), seed=0,
                                resources=stored, **options)
            assert fingerprint(result.summary) == TEXT_PINS[(name, method)]
            result.summary.validate(text_graph)

    @pytest.mark.skipif(not HASHSEED_PINNED,
                        reason="string-label pins need PYTHONHASHSEED=0")
    @pytest.mark.parametrize("method", ["slugger", "sweg", "randomized"])
    def test_string_labelled_pinned(self, tmp_path, method):
        graph = string_fixture()
        options = METHOD_OPTIONS[method]
        assert fingerprint(
            engine.run(method, graph, seed=0, **options).summary
        ) == STRING_PINS[method]
        path = tmp_path / "s.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored:
            result = engine.run(method, stored.graph(), seed=0,
                                resources=stored, **options)
            assert fingerprint(result.summary) == STRING_PINS[method]

    def test_stored_resources_with_direct_summarizer(self, tmp_path):
        """The storage resources also plug into Slugger.summarize directly."""
        graph = int_fixture()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        config = SluggerConfig(iterations=5, seed=0)
        reference = Slugger(config).summarize(graph)
        with storage.load(path) as stored:
            result = Slugger(config).summarize(stored.graph(), resources=stored)
        assert fingerprint(result.summary) == fingerprint(reference.summary)

    def test_stored_with_degenerate_graphs(self, tmp_path):
        for index, graph in enumerate((Graph(), Graph(edges=[(0, 1)]))):
            path = tmp_path / f"g{index}.slg"
            storage.pack(graph, path)
            with storage.load(path) as stored:
                result = engine.run("slugger", stored.graph(), seed=0,
                                    resources=stored, iterations=3)
                reference = engine.run("slugger", graph, seed=0, iterations=3)
                assert fingerprint(result.summary) == fingerprint(reference.summary)


# ----------------------------------------------------------------------
# Sharded ingest
# ----------------------------------------------------------------------
MESSY_EDGE_LIST = (
    "﻿# a BOM-prefixed comment\r\n"
    "1 2\r\n"
    "% another comment style\n"
    "2\t3\t0.75\n"
    "3 4 extra trailing columns ignored\n"
    "\n"
    "4 4\n"
    "1 2\n"
    "alpha beta\n"
    "beta 1\n"
)


class TestShardedIngest:
    def test_byte_shards_cover_and_partition(self):
        bounds = byte_shards(1000, 7, min_shard_bytes=1)
        assert bounds[0][0] == 0 and bounds[-1][1] == 1000
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_byte_shards_respect_min_size(self):
        assert len(byte_shards(100, 8, min_shard_bytes=64)) == 1
        assert byte_shards(0, 4, min_shard_bytes=1) == []

    @pytest.mark.skipif(not FORK, reason="sharded ingest needs fork")
    @pytest.mark.parametrize("workers", [2, 3, 8])
    def test_sharded_equals_serial(self, tmp_path, workers):
        path = tmp_path / "g.txt"
        write_edge_list(er_fixture(), path)
        serial = read_edge_list(path)
        sharded = sharded_read_edge_list(path, workers=workers, min_shard_bytes=1)
        assert sharded.edge_set() == serial.edge_set()
        assert sharded.nodes() == serial.nodes()

    @pytest.mark.skipif(not FORK, reason="sharded ingest needs fork")
    def test_sharded_handles_messy_input(self, tmp_path):
        path = tmp_path / "messy.txt"
        path.write_bytes(MESSY_EDGE_LIST.encode("utf-8"))
        serial = read_edge_list(path)
        sharded = sharded_read_edge_list(path, workers=4, min_shard_bytes=1)
        assert sharded.edge_set() == serial.edge_set()
        assert sharded.nodes() == serial.nodes()
        assert sharded.has_edge("alpha", "beta")
        assert sharded.has_edge(2, 3)
        assert not sharded.has_node("﻿1")

    @pytest.mark.skipif(not FORK, reason="sharded ingest needs fork")
    def test_sharded_handles_lone_carriage_returns(self, tmp_path):
        # The serial reader's universal-newlines mode treats a lone \r
        # as a line break; the shard workers must agree.
        path = tmp_path / "mac.txt"
        path.write_bytes(b"1 2\r3 4\r5 6\n7 8\r\n9 10\r11 12")
        serial = read_edge_list(path)
        sharded = sharded_read_edge_list(path, workers=3, min_shard_bytes=1)
        assert serial.edge_set() == {(1, 2), (3, 4), (5, 6), (7, 8), (9, 10), (11, 12)}
        assert sharded.edge_set() == serial.edge_set()
        assert sharded.nodes() == serial.nodes()

    @pytest.mark.skipif(not FORK, reason="sharded ingest needs fork")
    def test_sharded_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n" * 50 + "just-one-column\n" + "3 4\n" * 50)
        with pytest.raises(GraphFormatError, match="two columns"):
            sharded_read_edge_list(path, workers=3, min_shard_bytes=1)

    def test_small_file_falls_back_to_serial(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text("1 2\n2 3\n")
        graph = read_edge_list(path, workers=8)
        assert graph.edge_set() == {(1, 2), (2, 3)}

    @pytest.mark.skipif(not FORK, reason="needs fork")
    def test_read_edge_list_workers_flag(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(int_fixture(), path)
        assert read_edge_list(path, workers=2).edge_set() == \
            read_edge_list(path).edge_set()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises((GraphFormatError, OSError)):
            sharded_read_edge_list(tmp_path / "absent.txt", workers=2)


# ----------------------------------------------------------------------
# Content-addressed cache
# ----------------------------------------------------------------------
class TestGraphCache:
    def test_fetch_miss_then_hit(self, tmp_path):
        text = tmp_path / "g.txt"
        write_edge_list(int_fixture(), text)
        cache = GraphCache(tmp_path / "cache")
        first = cache.fetch_edge_list(text)
        # A miss packs and then maps the fresh container, so the mapped
        # substrate is available on both sides of the hit/miss split.
        assert not first.hit and first.stored is not None
        second = cache.fetch_edge_list(text)
        assert second.hit and second.stored is not None
        assert second.graph.edge_set() == first.graph.edge_set()
        assert second.graph.nodes() == first.graph.nodes()
        first.stored.close()
        second.stored.close()

    def test_source_change_misses(self, tmp_path):
        text = tmp_path / "g.txt"
        text.write_text("1 2\n")
        cache = GraphCache(tmp_path / "cache")
        cache.fetch_edge_list(text)
        text.write_text("1 2\n2 3\n")
        result = cache.fetch_edge_list(text)
        assert not result.hit
        assert result.graph.num_edges == 2
        assert len(cache.digests()) == 2

    def test_corrupt_cached_container_degrades_to_miss(self, tmp_path):
        text = tmp_path / "g.txt"
        write_edge_list(int_fixture(), text)
        cache = GraphCache(tmp_path / "cache")
        first = cache.fetch_edge_list(text)
        data = bytearray(first.container_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        first.container_path.write_bytes(bytes(data))
        recovered = cache.fetch_edge_list(text)
        assert not recovered.hit
        assert recovered.graph.edge_set() == first.graph.edge_set()
        # And the repack means the next fetch hits again.
        assert cache.fetch_edge_list(text).hit

    def test_store_csr_is_idempotent(self, tmp_path):
        cache = GraphCache(tmp_path / "cache")
        csr = DenseAdjacency.from_graph(int_fixture()).freeze()
        digest_a, path_a, created_a = cache.store_csr(csr)
        digest_b, path_b, created_b = cache.store_csr(csr)
        assert digest_a == digest_b and path_a == path_b
        assert created_a and not created_b
        assert cache.total_bytes() == path_a.stat().st_size

    def test_entries_inspect_cached_containers(self, tmp_path):
        cache = GraphCache(tmp_path / "cache")
        cache.store_graph(int_fixture())
        cache.store_graph(er_fixture())
        infos = list(cache.entries())
        assert sorted(info.num_nodes for info in infos) == [200, 300]

    def test_file_digest_tracks_bytes(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("1 2\n")
        before = file_digest(path)
        assert before == file_digest(path)
        path.write_text("1 2\n3 4\n")
        assert file_digest(path) != before


# ----------------------------------------------------------------------
# Service integration: prefetch + persistence
# ----------------------------------------------------------------------
class TestStorePrefetch:
    def test_register_prefetch_builds_in_background(self):
        store = GraphStore()
        graph = int_fixture()
        handle = store.register("g", graph, prefetch=True)
        store.drain_prefetch(timeout=30)
        stats = store.stats()
        assert stats["prefetched"] == 1
        assert stats["prefetch_errors"] == 0
        assert handle.builds == 1
        # The first request finds warm views: no further build happens.
        assert handle.dense() is not None
        assert handle.builds == 1
        store.close()

    def test_register_prefetch_persists_to_cache(self, tmp_path):
        store = GraphStore(cache_dir=tmp_path / "cache")
        graph = int_fixture()
        store.register("g", graph, prefetch=True)
        store.drain_prefetch(timeout=30)
        stats = store.stats()
        assert stats["prefetched"] == 1 and stats["packed"] == 1
        [digest] = store.cache.digests()
        with store.cache.load(digest) as reloaded:
            assert reloaded.graph().edge_set() == graph.edge_set()
        # Re-registering identical content packs nothing new.
        other = int_fixture()
        store.register("g2", other, prefetch=True)
        store.drain_prefetch(timeout=30)
        assert store.stats()["packed"] == 1
        store.close()

    def test_seeded_csr_is_not_repacked(self, tmp_path):
        # A handle seeded from a container must not be re-encoded and
        # duplicated under a content digest by the persistence lane.
        graph = int_fixture()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        stored = storage.load(path)
        store = GraphStore(cache_dir=tmp_path / "cache")
        store.register("g", graph, csr=stored.csr(), prefetch=True)
        store.drain_prefetch(timeout=30)
        stats = store.stats()
        assert stats["prefetched"] == 1
        assert stats["packed"] == 0
        assert store.cache.digests() == []
        store.close()
        stored.close()

    def test_register_with_stored_substrate_skips_build(self, tmp_path):
        graph = int_fixture()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        stored = storage.load(path)
        store = GraphStore()
        handle = store.register("g", graph, dense=stored.dense(), csr=stored.csr())
        assert handle.builds == 0
        assert handle.csr() is stored.csr()
        assert handle.dense() is stored.dense()
        store.close()
        stored.close()

    def test_stale_seed_substrate_rejected(self, tmp_path):
        graph = int_fixture()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        stored = storage.load(path)
        graph.add_edge(0, 199)
        store = GraphStore()
        from repro.exceptions import ServiceError
        with pytest.raises(ServiceError, match="stale"):
            store.register("g", graph, csr=stored.csr())
        store.close()
        stored.close()

    def test_service_stats_expose_prefetch(self):
        with SummaryService() as service:
            graph = int_fixture()
            service.register_graph("g", graph, prefetch=True)
            service.store.drain_prefetch(timeout=30)
            record = service.stats()["store"]
            assert record["prefetched"] == 1
            assert record["prefetch_pending"] == 0
            job = service.submit(method="slugger", graph_key="g", seed=0,
                                 options={"iterations": 5})
            assert fingerprint(job.result(timeout=120).summary) == \
                MEMORY_PINS[("caveman", "slugger")]

    def test_service_cache_dir_owns_persisting_store(self, tmp_path):
        with SummaryService(cache_dir=tmp_path / "cache") as service:
            graph = int_fixture()
            service.register_graph("g", graph, prefetch=True)
            service.store.drain_prefetch(timeout=30)
            assert service.stats()["store"]["packed"] == 1
            assert len(service.store.cache.digests()) == 1

    def test_service_rejects_store_and_cache_dir(self, tmp_path):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            SummaryService(graph_store=GraphStore(), cache_dir=tmp_path)

    def test_stored_graph_serves_identical_results_via_service(self, tmp_path):
        graph = int_fixture()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored, SummaryService() as service:
            loaded = stored.graph()
            service.register_graph("g", loaded, dense=stored.dense(),
                                   csr=stored.csr())
            job = service.submit(method="slugger", graph_key="g", seed=0,
                                 options={"iterations": 5})
            assert fingerprint(job.result(timeout=120).summary) == \
                MEMORY_PINS[("caveman", "slugger")]


# ----------------------------------------------------------------------
# Mapped CSR as executor / compare-harness substrate
# ----------------------------------------------------------------------
class TestMappedConsumers:
    def test_csr_shingles_on_mapped_view(self, tmp_path):
        from repro.core.shingles import csr_shingles_range, make_hash_function

        graph = int_fixture()
        dense = DenseAdjacency.from_graph(graph)
        reference = dense.freeze()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        with storage.load(path) as stored:
            mapped = stored.csr()
            hash_function = make_hash_function(42)
            values = [hash_function(label) for label in mapped.index.labels()]
            assert csr_shingles_range(mapped, values, 0, mapped.num_nodes) == \
                csr_shingles_range(reference, values, 0, reference.num_nodes)

    def test_compare_methods_accepts_stored_resources(self, tmp_path):
        from repro.analysis.comparison import compare_methods

        graph = int_fixture()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        reference = compare_methods(graph, methods=("slugger", "sweg"), seed=0)
        with storage.load(path) as stored:
            results = compare_methods(stored.graph(), methods=("slugger", "sweg"),
                                      seed=0, resources=stored)
        assert [(r.method, fingerprint(r.summary)) for r in results] == \
            [(r.method, fingerprint(r.summary)) for r in reference]

    @pytest.mark.skipif(not FORK, reason="sharded shingle phase needs fork")
    def test_mapped_view_survives_forked_shingle_workers(self, tmp_path):
        """Forked shingle shards inherit the mmap-backed CSR context."""
        from repro import ExecutionConfig

        graph = er_fixture()
        path = tmp_path / "g.slg"
        storage.pack(graph, path)
        execution = ExecutionConfig(workers=2, shingle_parallel_min_nodes=10)
        reference = Slugger(SluggerConfig(iterations=3, seed=0)).summarize(graph)
        with storage.load(path) as stored:
            result = Slugger(
                SluggerConfig(iterations=3, seed=0), execution=execution
            ).summarize(stored.graph(), resources=stored)
        assert fingerprint(result.summary) == fingerprint(reference.summary)
