"""Tests for the dynamic-graph stream substrate and the online summarizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StreamError
from repro.graphs import Graph, caveman_graph, erdos_renyi_graph, path_graph
from repro.streaming import (
    DynamicGraph,
    EdgeEvent,
    EventKind,
    OnlineSummarizer,
    deletion,
    fully_dynamic_stream,
    insertion,
    insertion_stream,
    replay,
    replay_stream,
    sliding_window_stream,
    stream_statistics,
)


class TestEdgeEvent:
    def test_insertion_and_deletion_helpers(self):
        event = insertion(1, 2, time=5)
        assert event.kind is EventKind.INSERT
        assert event.is_insertion and not event.is_deletion
        assert event.edge == (1, 2)
        assert deletion(2, 1).is_deletion

    def test_edge_is_canonical(self):
        assert insertion(7, 3).edge == (3, 7)

    def test_self_loop_rejected(self):
        with pytest.raises(StreamError):
            insertion(4, 4)

    def test_negative_time_rejected(self):
        with pytest.raises(StreamError):
            EdgeEvent(EventKind.INSERT, 0, 1, time=-1)

    def test_bad_kind_rejected(self):
        with pytest.raises(StreamError):
            EdgeEvent("add", 0, 1)

    def test_events_are_hashable_and_comparable(self):
        assert insertion(1, 2, time=3) == insertion(1, 2, time=3)
        assert len({insertion(1, 2), insertion(1, 2)}) == 1


class TestDynamicGraph:
    def test_apply_insert_and_delete(self):
        dynamic = DynamicGraph()
        assert dynamic.apply(insertion(0, 1))
        assert dynamic.graph.has_edge(0, 1)
        assert dynamic.apply(deletion(0, 1))
        assert not dynamic.graph.has_edge(0, 1)
        assert dynamic.time == 2
        assert len(dynamic.log) == 2

    def test_strict_mode_rejects_duplicate_insert(self):
        dynamic = DynamicGraph()
        dynamic.apply(insertion(0, 1))
        with pytest.raises(StreamError):
            dynamic.apply(insertion(0, 1))

    def test_strict_mode_rejects_missing_delete(self):
        with pytest.raises(StreamError):
            DynamicGraph().apply(deletion(0, 1))

    def test_lenient_mode_ignores_redundant_events(self):
        dynamic = DynamicGraph()
        dynamic.apply(insertion(0, 1))
        assert not dynamic.apply(insertion(0, 1), strict=False)
        assert not dynamic.apply(deletion(5, 6), strict=False)
        assert dynamic.graph.num_edges == 1

    def test_initial_graph_is_copied(self):
        initial = path_graph(3)
        dynamic = DynamicGraph(initial)
        dynamic.apply(deletion(0, 1))
        assert initial.has_edge(0, 1)
        assert not dynamic.graph.has_edge(0, 1)

    def test_apply_all_counts_changes(self):
        dynamic = DynamicGraph()
        events = [insertion(0, 1), insertion(1, 2), deletion(0, 1)]
        assert dynamic.apply_all(events) == 3

    def test_snapshot_is_independent(self):
        dynamic = DynamicGraph()
        dynamic.apply(insertion(0, 1))
        snapshot = dynamic.snapshot()
        dynamic.apply(insertion(1, 2))
        assert snapshot.num_edges == 1


class TestStreamGenerators:
    def test_insertion_stream_replays_to_graph(self):
        graph = caveman_graph(4, 5, 0.1, seed=0)
        events = insertion_stream(graph, seed=1)
        assert len(events) == graph.num_edges
        assert all(event.is_insertion for event in events)
        assert replay(events) == graph

    def test_insertion_stream_is_seeded(self):
        graph = erdos_renyi_graph(20, 0.2, seed=2)
        assert insertion_stream(graph, seed=3) == insertion_stream(graph, seed=3)
        assert insertion_stream(graph, seed=3) != insertion_stream(graph, seed=4)

    def test_fully_dynamic_stream_ends_at_input_graph(self):
        graph = caveman_graph(4, 5, 0.1, seed=5)
        events = fully_dynamic_stream(graph, deletion_ratio=0.3, seed=6)
        assert replay(events) == graph
        stats = stream_statistics(events)
        assert stats["num_deletions"] > 0
        assert stats["num_insertions"] > graph.num_edges  # deleted edges re-inserted

    def test_fully_dynamic_zero_ratio_is_insertion_only(self):
        graph = path_graph(10)
        events = fully_dynamic_stream(graph, deletion_ratio=0.0, seed=0)
        assert all(event.is_insertion for event in events)

    def test_sliding_window_keeps_last_window_edges(self):
        graph = erdos_renyi_graph(25, 0.2, seed=7)
        window = 15
        events = sliding_window_stream(graph, window=window, seed=8)
        final = replay(events)
        assert final.num_edges == min(window, graph.num_edges)

    def test_sliding_window_rejects_bad_window(self):
        with pytest.raises(StreamError):
            sliding_window_stream(path_graph(4), window=0)

    def test_replay_strict_detects_inconsistency(self):
        with pytest.raises(StreamError):
            replay([deletion(0, 1)])
        with pytest.raises(StreamError):
            replay([insertion(0, 1), insertion(0, 1)])

    def test_stream_statistics_shares(self):
        events = [insertion(0, 1), insertion(1, 2), deletion(0, 1)]
        stats = stream_statistics(events)
        assert stats["num_events"] == 3
        assert stats["deletion_share"] == pytest.approx(1 / 3)
        assert stream_statistics([])["deletion_share"] == 0.0

    @given(st.integers(0, 2**31), st.floats(0.0, 0.5))
    @settings(max_examples=15, deadline=None)
    def test_fully_dynamic_stream_property(self, seed, ratio):
        graph = erdos_renyi_graph(15, 0.25, seed=seed % 1000)
        events = fully_dynamic_stream(graph, deletion_ratio=ratio, seed=seed)
        # An edge stream cannot convey isolated nodes, so the comparison is
        # on edge sets (node coverage is exercised by the non-property tests).
        assert replay(events).edge_set() == graph.edge_set()


class TestOnlineSummarizer:
    def test_replay_insertion_stream_matches_static_graph(self):
        graph = caveman_graph(4, 5, 0.1, seed=9)
        events = insertion_stream(graph, seed=0)
        result = replay_stream(events, checkpoints=4)
        assert result.final_graph == graph
        result.final_summary.validate(graph)
        assert result.final_relative_size() > 0

    def test_replay_fully_dynamic_stream_stays_lossless(self):
        graph = caveman_graph(3, 6, 0.1, seed=10)
        events = fully_dynamic_stream(graph, deletion_ratio=0.25, seed=11)
        result = replay_stream(events, checkpoints=5)
        # Every recorded checkpoint validated the summary against the
        # then-current graph; the final state must equal the input graph.
        assert result.final_graph == graph
        assert result.events_applied == len(events)
        assert all(point.relative_size > 0 for point in result.checkpoints)

    def test_checkpoints_are_monotone_in_time(self):
        graph = erdos_renyi_graph(20, 0.2, seed=12)
        result = replay_stream(insertion_stream(graph, seed=0), checkpoints=6)
        times = [point.time for point in result.checkpoints]
        assert times == sorted(times)
        assert times[-1] == len(insertion_stream(graph, seed=0))

    def test_empty_stream(self):
        result = replay_stream([], checkpoints=3)
        assert result.events_applied == 0
        assert result.checkpoints == []

    def test_invalid_checkpoint_count(self):
        with pytest.raises(StreamError):
            OnlineSummarizer().replay([insertion(0, 1)], checkpoints=0)

    def test_final_relative_size_requires_checkpoints(self):
        with pytest.raises(StreamError):
            replay_stream([], checkpoints=1).final_relative_size()

    def test_online_summary_tracks_deletions(self):
        summarizer = OnlineSummarizer(seed=0)
        summarizer.apply(insertion(0, 1))
        summarizer.apply(insertion(1, 2))
        summarizer.apply(deletion(0, 1))
        summary = summarizer.summary()
        summary.validate(summarizer.graph)
        assert summarizer.graph.num_edges == 1
