"""Tests for summary persistence: SUMM sections, result cache, resume.

The central guarantees exercised here:

* **Content addressing** — ``summary_key`` is a pure function of graph
  digest, method, seed, and the *resolved* config fingerprint: default
  options and explicit defaults address the same entry, the execution
  config never participates, and seedless runs are uncacheable.
* **Canonical round trips** — hierarchical and flat summaries encode to
  byte-identical ``SUMM`` sections whenever the summaries are equal, and
  ``encode → write → load_summary`` reproduces fingerprint, metadata,
  history, and decompression exactly.
* **Fail-loud corruption handling** — truncation, flipped payload bytes,
  version skew, missing sections, and wrong-container loads all raise
  ``ContainerFormatError``; the cache converts corruption into a miss
  (unlink + recompute), never a bad summary.
* **Bit-identical warm starts and resumes** — a fresh service over a
  populated cache returns the stored summary with zero summarizer
  iterations, and a run killed at iteration *k* resumes from its
  checkpoint to the same fingerprint and history as an uninterrupted
  run with the same seed.
"""

from __future__ import annotations

import os

import pytest

from repro import engine, storage
from repro.algorithms.components import connected_components, summary_components_ids
from repro.algorithms.kernels import components_ids
from repro.algorithms.providers import resolve_id_adjacency
from repro.core import Slugger, SluggerConfig
from repro.engine.hooks import RunControl
from repro.exceptions import ContainerFormatError, JobCancelled
from repro.graphs import (
    DenseAdjacency,
    Graph,
    caveman_graph,
    erdos_renyi_graph,
)
from repro.model.hierarchy import Hierarchy
from repro.model.summary import HierarchicalSummary
from repro.service import SummaryService
from repro.storage.format import (
    FLAG_SUMMARY,
    container_digest,
    encode_container,
    read_container_info,
    write_container_image,
)
from repro.storage.summary_store import (
    TAG_SUMMARY_META,
    SummaryCache,
    SummaryMeta,
    config_fingerprint,
    encode_checkpoint_container,
    encode_summary_container,
    encode_summary_sections,
    load_checkpoint,
    load_summary,
    read_summary_meta,
    summary_fingerprint,
    summary_key,
)

#: SHA-256 of the canonical SUMM encoding of the iterations=8 / seed=0
#: SLUGGER summary of the caveman fixture.  The hierarchical codec is
#: id-native, so the string-labelled twin of the fixture pins the *same*
#: digest — and neither depends on PYTHONHASHSEED (the dense substrate
#: made shingles id-based).  Any drift means the canonical encoding
#: changed and every existing cache entry silently mis-addresses.
CAVEMAN_PIN = "22ff9fd0e2890140dc0dfdbc208dec61ca009815729a311f5f8fbcbec0c391e5"


def int_fixture() -> Graph:
    return caveman_graph(4, 6, seed=1)


def string_fixture() -> Graph:
    return Graph(edges=[(f"v{u}", f"v{v}") for u, v in int_fixture().edges()])


def frozen_csr(graph: Graph):
    return DenseAdjacency.from_graph(graph).freeze()


def summarize(graph: Graph, iterations: int = 8, seed: int = 0, **options):
    return Slugger(
        SluggerConfig(iterations=iterations, seed=seed, **options)
    ).summarize(graph)


def meta_for(graph, csr, result, iterations: int = 8, seed: int = 0) -> SummaryMeta:
    config_digest, config_json = config_fingerprint(
        "slugger", {"iterations": iterations}
    )
    return SummaryMeta(
        kind="hierarchical",
        method="slugger",
        seed=seed,
        graph_digest=container_digest(csr),
        config_digest=config_digest,
        config_json=config_json,
        extra={"history": result.history},
    )


def checkpoint_images(graph, csr, iterations: int = 8, seed: int = 0):
    """Run SLUGGER with a sink that encodes each boundary immediately.

    The sink contract hands over *live* references (the run's summary
    and history keep evolving), so snapshots must serialize inside the
    sink call — exactly what the service's sink does.  Returns the
    finished result and ``{iteration: encoded checkpoint image}``.
    """
    config_digest, config_json = config_fingerprint(
        "slugger", {"iterations": iterations}
    )
    meta = SummaryMeta(
        kind="hierarchical", method="slugger", seed=seed,
        graph_digest=container_digest(csr),
        config_digest=config_digest, config_json=config_json,
    )
    images = {}

    def sink(payload):
        images[payload["iteration"]] = encode_checkpoint_container(
            payload["summary"], meta, payload["iteration"],
            payload["rng_state"], payload["history"],
        )

    control = RunControl(checkpoint_sink=sink)
    result = Slugger(SluggerConfig(iterations=iterations, seed=seed)).summarize(
        graph, control=control
    )
    return result, images, meta


def write_summary(tmp_path, graph, iterations: int = 8, seed: int = 0):
    """``(path, result, csr, meta)`` for a packed summary container."""
    csr = frozen_csr(graph)
    result = summarize(graph, iterations=iterations, seed=seed)
    meta = meta_for(graph, csr, result, iterations=iterations, seed=seed)
    path = tmp_path / "summary.slg"
    write_container_image(path, encode_summary_container(csr, result.summary, meta))
    return path, result, csr, meta


# ======================================================================
# Content addressing
# ======================================================================
class TestSummaryKeying:
    def test_default_options_address_like_explicit_defaults(self):
        assert config_fingerprint("slugger", {}) == config_fingerprint(
            "slugger", {"iterations": 20}
        )

    def test_non_default_options_change_the_address(self):
        assert config_fingerprint("slugger", {"iterations": 3}) != config_fingerprint(
            "slugger", {"iterations": 20}
        )

    def test_option_order_is_canonicalized(self):
        assert config_fingerprint(
            "slugger", {"iterations": 5, "prune": True}
        ) == config_fingerprint("slugger", {"prune": True, "iterations": 5})

    def test_seed_is_excluded_from_the_config_digest(self):
        # The seed addresses through summary_key, not the config digest,
        # so one config fingerprint covers every seed of that config.
        digest_a, _ = config_fingerprint("slugger", {"iterations": 5})
        digest_b, _ = config_fingerprint("slugger", {"iterations": 5, "seed": 9})
        assert digest_a == digest_b

    def test_summary_key_separates_every_coordinate(self):
        base = summary_key("g" * 64, "slugger", 0, "c" * 64)
        assert summary_key("h" * 64, "slugger", 0, "c" * 64) != base
        assert summary_key("g" * 64, "sweg", 0, "c" * 64) != base
        assert summary_key("g" * 64, "slugger", 1, "c" * 64) != base
        assert summary_key("g" * 64, "slugger", 0, "d" * 64) != base
        assert summary_key("g" * 64, "slugger", 0, "c" * 64) == base

    def test_meta_key_matches_summary_key(self):
        graph = int_fixture()
        csr = frozen_csr(graph)
        result = summarize(graph, iterations=3)
        meta = meta_for(graph, csr, result, iterations=3)
        assert meta.key == summary_key(
            meta.graph_digest, "slugger", 0, meta.config_digest
        )

    def test_meta_to_dict_is_json_friendly(self):
        graph = int_fixture()
        csr = frozen_csr(graph)
        result = summarize(graph, iterations=3)
        record = meta_for(graph, csr, result, iterations=3).to_dict()
        assert record["kind"] == "hierarchical"
        assert record["method"] == "slugger"
        assert record["seed"] == 0
        assert record["key"] == summary_key(
            record["graph_digest"], "slugger", 0, record["config_digest"]
        )


# ======================================================================
# Round trips
# ======================================================================
class TestSummaryRoundTrip:
    def test_hierarchical_round_trip(self, tmp_path):
        graph = int_fixture()
        path, result, csr, meta = write_summary(tmp_path, graph)
        with load_summary(path) as stored:
            assert stored.fingerprint() == summary_fingerprint(result.summary)
            assert stored.meta.method == "slugger"
            assert stored.meta.seed == 0
            assert stored.meta.kind == "hierarchical"
            assert stored.meta.graph_digest == container_digest(csr)
            assert stored.meta.extra["history"] == result.history
            decompressed = stored.summary.decompress()
            assert decompressed.num_edges == graph.num_edges
            assert sorted(decompressed.edges()) == sorted(graph.edges())

    def test_canonical_reencode_is_byte_identical(self, tmp_path):
        # Equal summaries ⇒ byte-identical sections is what makes the
        # store content-addressable; re-encoding a decoded summary must
        # reproduce the original image exactly.
        graph = int_fixture()
        path, result, csr, meta = write_summary(tmp_path, graph)
        original = path.read_bytes()
        with load_summary(path) as stored:
            image = encode_summary_container(csr, stored.summary, stored.meta)
        assert image == original

    def test_flat_round_trip(self, tmp_path):
        graph = int_fixture()
        csr = frozen_csr(graph)
        result = engine.run("sweg", graph, seed=0, iterations=4)
        labels = csr.index.labels()
        config_digest, config_json = config_fingerprint("sweg", {"iterations": 4})
        meta = SummaryMeta(
            kind="flat", method="sweg", seed=0,
            graph_digest=container_digest(csr),
            config_digest=config_digest, config_json=config_json,
            extra={"history": result.history},
        )
        path = tmp_path / "flat.slg"
        write_container_image(
            path, encode_summary_container(csr, result.summary, meta)
        )
        with load_summary(path) as stored:
            assert stored.meta.kind == "flat"
            assert stored.fingerprint() == summary_fingerprint(
                result.summary, labels
            )
            assert stored.summary.cost_eq11() == result.summary.cost_eq11()

    def test_canonical_encoding_pin(self):
        # Hard-coded codec-drift guard: see the CAVEMAN_PIN comment.
        int_summary = summarize(int_fixture()).summary
        assert summary_fingerprint(int_summary) == CAVEMAN_PIN
        string_summary = summarize(string_fixture()).summary
        assert summary_fingerprint(string_summary) == CAVEMAN_PIN

    def test_string_label_round_trip(self, tmp_path):
        graph = string_fixture()
        path, result, csr, meta = write_summary(tmp_path, graph)
        with load_summary(path) as stored:
            assert stored.fingerprint() == summary_fingerprint(result.summary)
            decompressed = stored.summary.decompress()
            assert sorted(decompressed.edges()) == sorted(graph.edges())

    def test_read_summary_meta_without_loading_the_summary(self, tmp_path):
        graph = int_fixture()
        path, result, csr, meta = write_summary(tmp_path, graph)
        cheap = read_summary_meta(path)
        assert cheap.key == meta.key
        assert cheap.extra["history"] == result.history

    def test_inspect_reports_summary_flag(self, tmp_path):
        graph = int_fixture()
        path, _, _, _ = write_summary(tmp_path, graph)
        info = storage.inspect_container(path)
        assert info.has_summary
        assert info.has_csr
        plain = tmp_path / "plain.slg"
        storage.pack(graph, plain)
        assert not storage.inspect_container(plain).has_summary


# ======================================================================
# Corruption and wrong-container handling
# ======================================================================
class TestCorruption:
    def test_load_summary_rejects_plain_container(self, tmp_path):
        path = tmp_path / "plain.slg"
        storage.pack(int_fixture(), path)
        with pytest.raises(ContainerFormatError, match="no summary sections"):
            load_summary(path)

    def test_read_summary_meta_rejects_plain_container(self, tmp_path):
        path = tmp_path / "plain.slg"
        storage.pack(int_fixture(), path)
        with pytest.raises(ContainerFormatError, match="no summary metadata"):
            read_summary_meta(path)

    def _checkpoint_path(self, tmp_path, graph, at: int = 3):
        csr = frozen_csr(graph)
        _, images, _ = checkpoint_images(graph, csr)
        path = tmp_path / "resume.ckpt.slg"
        write_container_image(path, images[at])
        return path, csr

    def test_load_summary_rejects_checkpoint_container(self, tmp_path):
        path, _ = self._checkpoint_path(tmp_path, int_fixture())
        with pytest.raises(ContainerFormatError, match="load_checkpoint"):
            load_summary(path)

    def test_mapped_load_rejects_checkpoint_container(self, tmp_path):
        path, _ = self._checkpoint_path(tmp_path, int_fixture())
        with pytest.raises(ContainerFormatError, match="no CSR sections"):
            storage.load(path)

    def test_load_checkpoint_rejects_summary_container(self, tmp_path):
        graph = int_fixture()
        path, _, _, _ = write_summary(tmp_path, graph)
        with pytest.raises(ContainerFormatError, match="not a checkpoint"):
            load_checkpoint(path, list(graph.nodes()))

    def test_checkpoint_graph_digest_guard(self, tmp_path):
        graph = int_fixture()
        path, _ = self._checkpoint_path(tmp_path, graph)
        with pytest.raises(ContainerFormatError, match="refusing to resume"):
            load_checkpoint(path, list(graph.nodes()), graph_digest="f" * 64)

    def test_flipped_payload_byte_fails_the_load(self, tmp_path):
        graph = int_fixture()
        path, _, _, _ = write_summary(tmp_path, graph)
        info = read_container_info(path)
        entry = info.maybe_section(b"SHIE")
        assert entry is not None
        blob = bytearray(path.read_bytes())
        blob[entry.offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ContainerFormatError):
            load_summary(path)

    def test_truncated_container_fails_the_load(self, tmp_path):
        graph = int_fixture()
        path, _, _, _ = write_summary(tmp_path, graph)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 16])
        with pytest.raises((ContainerFormatError, ValueError)):
            load_summary(path)

    def test_version_skew_is_rejected(self, tmp_path):
        graph = int_fixture()
        csr = frozen_csr(graph)
        result = summarize(graph, iterations=3)
        meta = meta_for(graph, csr, result, iterations=3)
        sections = encode_summary_sections(result.summary, meta)
        skewed = []
        for tag, payload in sections:
            if tag == TAG_SUMMARY_META:
                # The SMET payload leads with varint version 1; claim a
                # future version the reader must refuse.
                payload = b"\x02" + payload[1:]
            skewed.append((tag, payload))
        path = tmp_path / "skewed.slg"
        write_container_image(
            path,
            encode_container(csr, extra_sections=skewed, extra_flags=FLAG_SUMMARY),
        )
        with pytest.raises(ContainerFormatError, match="unsupported summary section"):
            load_summary(path)

    def test_missing_section_is_rejected(self, tmp_path):
        graph = int_fixture()
        csr = frozen_csr(graph)
        result = summarize(graph, iterations=3)
        meta = meta_for(graph, csr, result, iterations=3)
        sections = [
            (tag, payload)
            for tag, payload in encode_summary_sections(result.summary, meta)
            if tag != b"SHIE"
        ]
        path = tmp_path / "gutted.slg"
        write_container_image(
            path,
            encode_container(csr, extra_sections=sections, extra_flags=FLAG_SUMMARY),
        )
        with pytest.raises(ContainerFormatError, match="missing its SHIE"):
            load_summary(path)


# ======================================================================
# The cache
# ======================================================================
class TestSummaryCache:
    def _image_and_meta(self, graph, iterations=3, seed=0):
        csr = frozen_csr(graph)
        result = summarize(graph, iterations=iterations, seed=seed)
        meta = meta_for(graph, csr, result, iterations=iterations, seed=seed)
        return encode_summary_container(csr, result.summary, meta), meta, result

    def test_store_then_load_is_bit_identical(self, tmp_path):
        image, meta, result = self._image_and_meta(int_fixture())
        cache = SummaryCache(tmp_path / "cache")
        cache.store_summary(meta.key, image)
        assert cache.has_summary(meta.key)
        stored = cache.load_summary(meta.key)
        assert stored is not None
        with stored:
            assert stored.fingerprint() == summary_fingerprint(result.summary)
            assert stored.meta.extra["history"] == result.history

    def test_miss_returns_none(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        assert cache.load_summary("0" * 64) is None
        assert not cache.has_summary("0" * 64)

    def test_corrupt_entry_becomes_a_miss_and_is_unlinked(self, tmp_path):
        image, meta, _ = self._image_and_meta(int_fixture())
        cache = SummaryCache(tmp_path / "cache")
        path = cache.store_summary(meta.key, image)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.load_summary(meta.key) is None
        assert not path.exists()

    def test_store_summary_drops_the_checkpoint(self, tmp_path):
        image, meta, _ = self._image_and_meta(int_fixture())
        cache = SummaryCache(tmp_path / "cache")
        # A stale in-flight checkpoint must not outlive the finished
        # summary it was a snapshot of.
        cache.checkpoint_path(meta.key).write_bytes(b"placeholder")
        assert cache.has_checkpoint(meta.key)
        cache.store_summary(meta.key, image)
        assert not cache.has_checkpoint(meta.key)

    def test_lru_eviction_spares_recently_touched_entries(self, tmp_path):
        graph = int_fixture()
        images = [
            self._image_and_meta(graph, iterations=3, seed=seed)
            for seed in range(3)
        ]
        cache = SummaryCache(tmp_path / "cache")
        for position, (image, meta, _) in enumerate(images):
            path = cache.store_summary(meta.key, image)
            # Pin distinct mtimes without sleeping; seed 0 is oldest.
            os.utime(path, (1_000_000 + position, 1_000_000 + position))
        sizes = {meta.key: len(image) for image, meta, _ in images}
        keep_two = sizes[images[1][1].key] + sizes[images[2][1].key]
        report = cache.gc(budget_bytes=keep_two)
        assert report["evicted"] == 1
        assert report["freed_bytes"] == sizes[images[0][1].key]
        assert report["kept"] == 2
        assert not cache.has_summary(images[0][1].key)
        assert cache.has_summary(images[1][1].key)
        assert cache.has_summary(images[2][1].key)

    def test_gc_budget_zero_empties_the_cache(self, tmp_path):
        image, meta, _ = self._image_and_meta(int_fixture())
        cache = SummaryCache(tmp_path / "cache")
        cache.store_summary(meta.key, image)
        report = cache.gc(budget_bytes=0)
        assert report["evicted"] == 1
        assert report["total_bytes"] == 0
        assert cache.entries() == []

    def test_store_budget_enforced_automatically(self, tmp_path):
        image, meta, _ = self._image_and_meta(int_fixture())
        cache = SummaryCache(tmp_path / "cache", budget_bytes=len(image))
        cache.store_summary(meta.key, image)
        assert cache.has_summary(meta.key)
        other, other_meta, _ = self._image_and_meta(int_fixture(), seed=1)
        first = cache.summary_path(meta.key)
        os.utime(first, (1_000_000, 1_000_000))
        cache.store_summary(other_meta.key, other)
        # The budget holds one entry; the older one is evicted.
        assert cache.total_bytes() <= len(image) + len(other)
        assert not cache.has_summary(meta.key)
        assert cache.has_summary(other_meta.key)

    def test_entries_and_stats_reporting(self, tmp_path):
        image, meta, _ = self._image_and_meta(int_fixture())
        cache = SummaryCache(tmp_path / "cache", budget_bytes=10_000_000)
        cache.store_summary(meta.key, image)
        records = cache.entries()
        assert [record["key"] for record in records] == [meta.key]
        assert records[0]["kind"] == "summary"
        assert records[0]["bytes"] == len(image)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["checkpoints"] == 0
        assert stats["total_bytes"] == len(image)
        assert stats["budget_bytes"] == 10_000_000

    def test_negative_budget_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            SummaryCache(tmp_path / "cache", budget_bytes=-1)


# ======================================================================
# Checkpoint / resume bit-identity
# ======================================================================
class TestCheckpointResume:
    def test_checkpoint_sink_does_not_perturb_the_run(self):
        graph = int_fixture()
        plain = summarize(graph)
        result, images, _ = checkpoint_images(graph, frozen_csr(graph))
        assert summary_fingerprint(result.summary) == summary_fingerprint(
            plain.summary
        )
        assert result.history == plain.history
        assert set(images) == set(range(1, 9))

    def _resume_roundtrip(self, graph, at: int, tmp_path):
        csr = frozen_csr(graph)
        reference, images, _ = checkpoint_images(graph, csr)
        path = tmp_path / f"at{at}.ckpt.slg"
        write_container_image(path, images[at])
        checkpoint = load_checkpoint(
            path, list(graph.nodes()), graph_digest=container_digest(csr)
        )
        assert checkpoint.iteration == at
        assert len(checkpoint.history) == at
        control = RunControl(
            resume_payload={
                "iteration": checkpoint.iteration,
                "summary": checkpoint.summary,
                "rng_state": checkpoint.rng_state,
                "history": checkpoint.history,
            }
        )
        resumed = Slugger(SluggerConfig(iterations=8, seed=0)).summarize(
            graph, control=control
        )
        assert summary_fingerprint(resumed.summary) == summary_fingerprint(
            reference.summary
        )
        assert resumed.history == reference.history

    def test_resume_is_bit_identical_at_every_boundary(self, tmp_path):
        graph = int_fixture()
        for at in (1, 3, 7):
            self._resume_roundtrip(graph, at, tmp_path)

    def test_resume_is_bit_identical_for_string_labels(self, tmp_path):
        # Leaves are rebuilt against the live graph's node order, so the
        # round trip must hold for arbitrary hashable labels too.
        self._resume_roundtrip(string_fixture(), 3, tmp_path)


# ======================================================================
# Service integration: warm start, resume, inline path
# ======================================================================
class TestServiceWarmStart:
    def test_cold_run_persists_then_fresh_service_warm_starts(self, tmp_path):
        graph = int_fixture()
        cache_dir = tmp_path / "cache"
        with SummaryService(summary_cache_dir=cache_dir) as service:
            cold = service.submit(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 6},
            ).result()
            stats = service.stats()
            assert stats["summary_cache_stores"] == 1
            assert stats["summary_cache_hits"] == 0
            assert stats["summary_cache_errors"] == 0
        cold_fingerprint = summary_fingerprint(cold.summary)

        stages = []
        with SummaryService(summary_cache_dir=cache_dir) as service:
            job = service.submit(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 6},
            )
            job.add_progress_listener(lambda event: stages.append(event.stage))
            warm = job.result()
            stats = service.stats()
            assert stats["summary_cache_hits"] == 1
            assert stats["summary_cache_stores"] == 0
        assert warm.details.get("summary_cache") == "hit"
        assert "iteration" not in stages
        assert summary_fingerprint(warm.summary) == cold_fingerprint
        assert warm.history == cold.history

    def test_different_seed_misses(self, tmp_path):
        graph = int_fixture()
        cache_dir = tmp_path / "cache"
        with SummaryService(summary_cache_dir=cache_dir) as service:
            service.submit(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 3},
            ).result()
            service.submit(
                method="slugger", graph=graph, seed=1,
                options={"iterations": 3},
            ).result()
            stats = service.stats()
            assert stats["summary_cache_hits"] == 0
            assert stats["summary_cache_stores"] == 2

    def test_seedless_requests_bypass_the_cache(self, tmp_path):
        graph = int_fixture()
        with SummaryService(summary_cache_dir=tmp_path / "cache") as service:
            service.submit(
                method="slugger", graph=graph, options={"iterations": 3}
            ).result()
            stats = service.stats()
            assert stats["summary_cache_stores"] == 0
            assert stats["summary_cache"]["entries"] == 0

    def test_inline_run_consults_and_populates_the_cache(self, tmp_path):
        from repro.service import SummaryRequest

        graph = int_fixture()
        with SummaryService(summary_cache_dir=tmp_path / "cache") as service:
            request = SummaryRequest(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 3},
            )
            cold = service.run(request)
            warm = service.run(request)
            stats = service.stats()
            assert stats["summary_cache_stores"] == 1
            assert stats["summary_cache_hits"] == 1
        assert warm.details.get("summary_cache") == "hit"
        assert summary_fingerprint(warm.summary) == summary_fingerprint(
            cold.summary
        )

    def test_flat_summaries_warm_start_too(self, tmp_path):
        graph = int_fixture()
        cache_dir = tmp_path / "cache"
        with SummaryService(summary_cache_dir=cache_dir) as service:
            cold = service.submit(
                method="sweg", graph=graph, seed=0, options={"iterations": 3}
            ).result()
        with SummaryService(summary_cache_dir=cache_dir) as service:
            warm = service.submit(
                method="sweg", graph=graph, seed=0, options={"iterations": 3}
            ).result()
            assert service.stats()["summary_cache_hits"] == 1
        assert warm.details.get("summary_cache") == "hit"
        assert warm.summary.cost_eq11() == cold.summary.cost_eq11()
        assert warm.history == cold.history

    def test_cancelled_run_resumes_from_its_checkpoint(self, tmp_path):
        graph = int_fixture()
        cache_dir = tmp_path / "cache"
        with SummaryService(summary_cache_dir=cache_dir) as service:
            reference = service.submit(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 6},
            ).result()
        reference_fingerprint = summary_fingerprint(reference.summary)

        fresh = tmp_path / "fresh"
        with SummaryService(summary_cache_dir=fresh) as service:
            job = service.submit(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 6},
            )

            def cancel_at_two(event):
                # Checkpoint events fire synchronously from the run
                # thread, so the cancel lands before the next iteration.
                if event.stage == "checkpoint" and event.payload.get("iteration") == 2:
                    job.cancel()

            job.add_progress_listener(cancel_at_two)
            with pytest.raises(JobCancelled):
                job.result()
            cache = SummaryCache(fresh)
            assert any(
                record["kind"] == "checkpoint" for record in cache.entries()
            )

            stages = []
            resumed_job = service.submit(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 6},
            )
            resumed_job.add_progress_listener(
                lambda event: stages.append(
                    (event.stage, event.payload.get("iteration"))
                )
            )
            resumed = resumed_job.result()
            stats = service.stats()
            assert stats["summary_resumes"] == 1
            assert stats["summary_cache_errors"] == 0
        iterations_run = [i for stage, i in stages if stage == "iteration"]
        assert iterations_run and min(iterations_run) == 3
        assert ("resume", 2) in stages
        assert summary_fingerprint(resumed.summary) == reference_fingerprint
        assert resumed.history == reference.history

    def test_preseeded_checkpoint_resumes_in_a_fresh_service(self, tmp_path):
        # The checkpoint file is a plain container: parking one in the
        # cache directory under the request's content key is all it
        # takes for a brand-new process to resume the run.
        graph = int_fixture()
        csr = frozen_csr(graph)
        reference, images, meta = checkpoint_images(graph, csr, iterations=6)
        cache = SummaryCache(tmp_path / "cache")
        cache.store_checkpoint(meta.key, images[4])
        with SummaryService(summary_cache_dir=tmp_path / "cache") as service:
            resumed = service.submit(
                method="slugger", graph=graph, seed=0,
                options={"iterations": 6},
            ).result()
            assert service.stats()["summary_resumes"] == 1
        assert summary_fingerprint(resumed.summary) == summary_fingerprint(
            reference.summary
        )
        assert resumed.history == reference.history


# ======================================================================
# Superedge-level components shortcut
# ======================================================================
def leaf_level_components(summary):
    """The pre-PR-9 path: decompress-by-neighbor over the id adjacency."""
    adjacency = resolve_id_adjacency(summary)
    labels = adjacency.index.labels()
    return [{labels[u] for u in component} for component in components_ids(adjacency)]


class TestComponentsShortcut:
    def test_matches_leaf_level_on_sparse_graphs(self):
        cases = [erdos_renyi_graph(40, 0.08, seed=seed) for seed in range(6)]
        cases.append(caveman_graph(3, 5, seed=2))
        disconnected = erdos_renyi_graph(30, 0.05, seed=9)
        disconnected.add_node("isolated-a")
        disconnected.add_node("isolated-b")
        cases.append(disconnected)
        for position, graph in enumerate(cases):
            for iterations in (2, 6):
                summary = summarize(
                    graph, iterations=iterations, seed=position
                ).summary
                assert connected_components(summary) == leaf_level_components(
                    summary
                ), (position, iterations)

    def test_matches_leaf_level_on_dense_summaries_with_n_edges(self):
        # Dense ER graphs produce summaries where the dirty path (P
        # rectangles intersected by N carve-outs) actually runs; assert
        # the sweep genuinely exercises it.
        with_n_edges = 0
        for seed in range(12):
            graph = erdos_renyi_graph(50, 0.25, seed=seed)
            for iterations, prune in ((3, False), (8, False), (8, True)):
                summary = summarize(
                    graph, iterations=iterations, seed=seed, prune=prune
                ).summary
                if any(True for _ in summary.n_edges()):
                    with_n_edges += 1
                assert connected_components(summary) == leaf_level_components(
                    summary
                ), (seed, iterations, prune)
        assert with_n_edges > 0

    def test_adversarial_carve_out(self):
        # A blanket P edge whose N carve-outs disconnect vertices at the
        # leaf level while the superedge graph stays connected: {a,b} x
        # {c,d} minus b-c, b-d, a-d decompresses to the single edge a-c.
        hierarchy = Hierarchy()
        for label in ["a", "b", "c", "d"]:
            hierarchy.add_leaf(label)
        ab = hierarchy.create_parent([0, 1])
        cd = hierarchy.create_parent([2, 3])
        summary = HierarchicalSummary(hierarchy)
        summary.add_p_edge(ab, cd)
        summary.add_n_edge(1, cd)
        summary.add_n_edge(0, 3)
        assert sorted(summary.decompress().edges()) == [("a", "c")]
        components = connected_components(summary)
        assert components == leaf_level_components(summary)
        assert {"a", "c"} in components
        assert {"b"} in components
        assert {"d"} in components

    def test_id_level_shortcut_output_convention(self):
        # summary_components_ids follows the kernels convention exactly:
        # first-seen grouping over ascending leaf ids, largest first.
        graph = caveman_graph(3, 5, seed=2)
        summary = summarize(graph, iterations=4, seed=2).summary
        components = summary_components_ids(summary)
        flattened = [leaf for component in components for leaf in component]
        assert len(flattened) == len(set(flattened)) == graph.num_nodes
        assert components == sorted(components, key=len, reverse=True)
