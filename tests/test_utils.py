"""Unit tests for repro.utils (rng, validation, timing, stats)."""

from __future__ import annotations

import math
import random

import pytest

from repro.utils import (
    Stopwatch,
    ensure_rng,
    linear_fit,
    mean,
    pearson_correlation,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
    spawn_seeds,
    stdev,
    time_call,
)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_ensure_rng_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_none_gives_generator(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_ensure_rng_rejects_bad_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_spawn_seeds(self):
        seeds = spawn_seeds(3, 5)
        assert len(seeds) == 5
        assert seeds == spawn_seeds(3, 5)
        assert spawn_seeds(4, 5) != seeds

    def test_spawn_seeds_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestValidation:
    def test_require_type(self):
        assert require_type(3, int, "x") == 3
        with pytest.raises(TypeError):
            require_type("3", int, "x")
        with pytest.raises(TypeError):
            require_type(3, (str, list), "x")

    def test_require_positive(self):
        assert require_positive(2, "x") == 2
        with pytest.raises(ValueError):
            require_positive(0, "x")
        with pytest.raises(TypeError):
            require_positive("1", "x")

    def test_require_non_negative(self):
        assert require_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")

    def test_require_probability(self):
        assert require_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            require_probability(1.5, "p")
        with pytest.raises(TypeError):
            require_probability(None, "p")


class TestTiming:
    def test_stopwatch_measures_elapsed(self):
        watch = Stopwatch()
        watch.start()
        elapsed = watch.stop()
        assert elapsed >= 0.0
        assert watch.elapsed == elapsed

    def test_stopwatch_stop_before_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_stopwatch_context_manager(self):
        with Stopwatch() as watch:
            _ = sum(range(100))
        assert watch.elapsed >= 0.0

    def test_time_call(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0


class TestStats:
    def test_mean_and_stdev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stdev([2.0, 2.0, 2.0]) == 0.0
        assert math.isclose(stdev([1.0, 3.0]), 1.0)

    def test_empty_sequences_raise(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            stdev([])

    def test_linear_fit_exact_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.0 * x + 1.0 for x in xs]
        slope, intercept, r_squared = linear_fit(xs, ys)
        assert math.isclose(slope, 2.0)
        assert math.isclose(intercept, 1.0)
        assert math.isclose(r_squared, 1.0)

    def test_linear_fit_errors(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [2.0])
        with pytest.raises(ValueError):
            linear_fit([1.0, 1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            linear_fit([1.0, 2.0], [2.0])

    def test_pearson_correlation(self):
        xs = [1.0, 2.0, 3.0]
        assert math.isclose(pearson_correlation(xs, [2.0, 4.0, 6.0]), 1.0)
        assert math.isclose(pearson_correlation(xs, [6.0, 4.0, 2.0]), -1.0)
        with pytest.raises(ValueError):
            pearson_correlation(xs, [1.0, 1.0, 1.0])
